package lockserver

import (
	"bytes"
	"testing"
	"time"

	"rex/internal/core"
	"rex/internal/sim"
	"rex/internal/wire"
)

func newHost(t *testing.T, e *sim.Env) *core.NativeHost {
	t.Helper()
	h, err := core.NewNativeHost(e, 2, 0, 1, New(DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCreateRenewUpdateLifecycle(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e)
		if st := h.Apply(0, CreateReq("/a", 1, []byte("hello"))); st[0] != 1 {
			t.Fatalf("create = %d", st[0])
		}
		// Duplicate create fails.
		if st := h.Apply(0, CreateReq("/a", 2, []byte("x"))); st[0] != 0 {
			t.Errorf("duplicate create = %d, want 0", st[0])
		}
		// Holder renews.
		if st := h.Apply(0, RenewReq("/a", 1)); st[0] != 1 {
			t.Errorf("renew by holder = %d", st[0])
		}
		// Non-holder cannot renew.
		if st := h.Apply(0, RenewReq("/a", 2)); st[0] != 0 {
			t.Errorf("renew by stranger = %d, want 0", st[0])
		}
		// Non-holder cannot update while the lease is live.
		if st := h.Apply(0, UpdateReq("/a", 2, []byte("steal"))); st[0] != 2 {
			t.Errorf("update by stranger = %d, want 2 (held)", st[0])
		}
		// Holder updates fine.
		if st := h.Apply(0, UpdateReq("/a", 1, []byte("v2"))); st[0] != 1 {
			t.Errorf("update by holder = %d", st[0])
		}
	})
}

func TestLeaseExpiryAllowsTakeover(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.LeaseFor = 10 * time.Millisecond
		h, err := core.NewNativeHost(e, 1, 0, 1, New(opts))
		if err != nil {
			t.Fatal(err)
		}
		h.Apply(0, CreateReq("/b", 1, []byte("x")))
		if st := h.Apply(0, UpdateReq("/b", 2, []byte("early"))); st[0] != 2 {
			t.Fatalf("takeover before expiry = %d", st[0])
		}
		e.Sleep(20 * time.Millisecond) // past the lease
		if st := h.Apply(0, UpdateReq("/b", 2, []byte("mine"))); st[0] != 1 {
			t.Errorf("takeover after expiry = %d, want 1", st[0])
		}
	})
}

func TestInfoAndQuery(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e)
		h.Apply(0, CreateReq("/c", 9, []byte("content")))
		h.Apply(0, RenewReq("/c", 9))
		d := wire.NewDecoder(h.Apply(0, InfoReq("/c")))
		if !d.Bool() {
			t.Fatal("info: not found")
		}
		if holder := d.Uvarint(); holder != 9 {
			t.Errorf("holder = %d", holder)
		}
		d.Uvarint() // expiry
		if renews := d.Uvarint(); renews != 1 {
			t.Errorf("renews = %d", renews)
		}
		if size := d.Uvarint(); size != 7 {
			t.Errorf("size = %d", size)
		}
	})
}

func TestCheckpointRoundTrip(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e)
		h.Apply(0, CreateReq("/x", 1, []byte("one")))
		h.Apply(0, CreateReq("/y", 2, []byte("two")))
		h.Apply(0, RenewReq("/x", 1))
		var buf bytes.Buffer
		if err := h.SM.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		h2 := newHost(t, e)
		if err := h2.SM.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		h2.SM.WriteCheckpoint(&buf2)
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("checkpoint round trip not idempotent")
		}
		if st := h2.Apply(0, RenewReq("/x", 1)); st[0] != 1 {
			t.Errorf("renew after restore = %d", st[0])
		}
	})
}
