package simplefs

import (
	"bytes"
	"testing"

	"rex/internal/core"
	"rex/internal/sim"
	"rex/internal/wire"
)

func smallOpts() Options {
	o := DefaultOptions()
	o.Files = 4
	o.FileSize = 4 * BlockSize
	o.DiskRead = 0
	o.DiskWrite = 0
	return o
}

func newHost(t *testing.T, e *sim.Env, opts Options) *core.NativeHost {
	t.Helper()
	h, err := core.NewNativeHost(e, 2, 0, 1, New(opts))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func checksum(t *testing.T, h *core.NativeHost, file, off int) uint64 {
	t.Helper()
	d := wire.NewDecoder(h.Apply(0, ReadReq(file, off)))
	return d.Uvarint()
}

func TestWriteChangesChecksumDeterministically(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, smallOpts())
		before := checksum(t, h, 1, BlockSize)
		if st := h.Apply(0, WriteReq(1, BlockSize, 12345)); st[0] != 1 {
			t.Fatalf("write failed: %d", st[0])
		}
		after := checksum(t, h, 1, BlockSize)
		if before == after {
			t.Error("write did not change block contents")
		}
		// Same seed, same offset ⇒ same contents on a second file system.
		h2 := newHost(t, e, smallOpts())
		h2.Apply(0, WriteReq(1, BlockSize, 12345))
		if got := checksum(t, h2, 1, BlockSize); got != after {
			t.Errorf("write not deterministic: %x vs %x", got, after)
		}
		// Other blocks untouched.
		if a, b := checksum(t, h, 1, 0), checksum(t, h2, 1, 0); a != b {
			t.Error("adjacent block differs")
		}
	})
}

func TestOutOfRangeRejected(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, smallOpts())
		if st := h.Apply(0, ReadReq(99, 0)); st[0] != 0xff {
			t.Errorf("read of bad file = %x", st)
		}
		if st := h.Apply(0, WriteReq(0, 99*BlockSize, 1)); st[0] != 0xff {
			t.Errorf("write past EOF = %x", st)
		}
	})
}

func TestCheckpointRoundTrip(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, smallOpts())
		h.Apply(0, WriteReq(2, 0, 7))
		h.Apply(0, WriteReq(3, 2*BlockSize, 9))
		var buf bytes.Buffer
		if err := h.SM.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		h2 := newHost(t, e, smallOpts())
		if err := h2.SM.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		if a, b := checksum(t, h, 2, 0), checksum(t, h2, 2, 0); a != b {
			t.Errorf("restored file 2 differs: %x vs %x", a, b)
		}
		if a, b := checksum(t, h, 3, 2*BlockSize), checksum(t, h2, 3, 2*BlockSize); a != b {
			t.Errorf("restored file 3 differs")
		}
		// Geometry mismatch is rejected.
		bad := smallOpts()
		bad.Files = 2
		h3 := newHost(t, e, bad)
		if err := h3.SM.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
			t.Error("geometry mismatch not rejected")
		}
	})
}
