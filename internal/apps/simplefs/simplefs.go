// Package simplefs implements the paper's simple file system (§6.3):
// fixed-size files backed by an in-memory block store, with synchronized
// random 16 KB reads and writes under per-file Rex locks (Table 1: Lock).
// Disk access is modeled as latency (Sleep) plus a small CPU cost, so
// concurrent requests overlap their I/O the way batched disk queues do in
// the paper's experiment.
package simplefs

import (
	"fmt"
	"io"
	"time"

	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/wire"
)

// Op codes.
const (
	OpRead  byte = 1
	OpWrite byte = 2
)

// BlockSize is the I/O unit (16 KB, as in §6.3).
const BlockSize = 16 << 10

// Options configure the file system.
type Options struct {
	Files     int
	FileSize  int // bytes; must be a multiple of BlockSize
	DiskRead  time.Duration
	DiskWrite time.Duration
	CPUPerOp  time.Duration
}

// DefaultOptions shrink the paper's 64×128 MB dataset to simulation scale
// while keeping the 16 KB I/O unit and the 1:4 read:write mix external.
func DefaultOptions() Options {
	return Options{
		Files:     64,
		FileSize:  1 << 20, // 1 MiB per file at simulation scale
		DiskRead:  80 * time.Microsecond,
		DiskWrite: 120 * time.Microsecond,
		CPUPerOp:  6 * time.Microsecond,
	}
}

// FS is the file-system state machine.
type FS struct {
	opts  Options
	locks []*rexsync.Lock
	files [][]byte
	// writesApplied counts writes per file (diagnostics; under the file
	// lock).
	writesApplied []uint64
}

// New returns a core.Factory for the file system.
func New(opts Options) core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		fs := &FS{opts: opts}
		for i := 0; i < opts.Files; i++ {
			fs.locks = append(fs.locks, rexsync.NewLock(rt, fmt.Sprintf("file-%d", i)))
			fs.files = append(fs.files, make([]byte, opts.FileSize))
		}
		fs.writesApplied = make([]uint64, opts.Files)
		return fs
	}
}

// Primitives lists the Rex primitives used (Table 1).
func Primitives() []string { return []string{"Lock"} }

// Apply implements core.StateMachine.
func (fs *FS) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(req)
	op := d.Byte()
	file := int(d.Uvarint())
	off := int(d.Uvarint())
	if file < 0 || file >= fs.opts.Files || off < 0 || off+BlockSize > fs.opts.FileSize {
		return []byte{0xff}
	}
	ctx.Compute(fs.opts.CPUPerOp)
	switch op {
	case OpRead:
		fs.locks[file].Lock(w)
		// Model the disk read while holding the file lock (synchronized
		// I/O, as the paper's experiment does).
		ctx.Env().Sleep(fs.opts.DiskRead)
		var sum uint64
		block := fs.files[file][off : off+BlockSize]
		for i := 0; i < BlockSize; i += 512 {
			sum = sum*131 + uint64(block[i])
		}
		fs.locks[file].Unlock(w)
		e := wire.NewEncoder(nil)
		e.Uvarint(sum)
		return e.Bytes()
	case OpWrite:
		seed := d.Uvarint()
		fs.locks[file].Lock(w)
		ctx.Env().Sleep(fs.opts.DiskWrite)
		block := fs.files[file][off : off+BlockSize]
		v := seed
		for i := 0; i < BlockSize; i += 64 {
			v = v*6364136223846793005 + 1442695040888963407
			block[i] = byte(v >> 56)
		}
		fs.writesApplied[file]++
		fs.locks[file].Unlock(w)
		return []byte{1}
	}
	return []byte{0xff}
}

// Query implements core.QueryHandler: an unreplicated read.
func (fs *FS) Query(ctx *core.Ctx, q []byte) []byte {
	return fs.Apply(ctx, q)
}

// WriteCheckpoint implements core.StateMachine.
func (fs *FS) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	e.Uvarint(uint64(fs.opts.Files))
	e.Uvarint(uint64(fs.opts.FileSize))
	for i := 0; i < fs.opts.Files; i++ {
		e.Uvarint(fs.writesApplied[i])
		e.BytesVal(fs.files[i])
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadCheckpoint implements core.StateMachine.
func (fs *FS) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	files := int(d.Uvarint())
	size := int(d.Uvarint())
	if files != fs.opts.Files || size != fs.opts.FileSize {
		return fmt.Errorf("simplefs: checkpoint geometry %dx%d does not match %dx%d",
			files, size, fs.opts.Files, fs.opts.FileSize)
	}
	for i := 0; i < files; i++ {
		fs.writesApplied[i] = d.Uvarint()
		copy(fs.files[i], d.BytesVal())
	}
	return d.Err()
}

// ReadReq encodes a block read.
func ReadReq(file, off int) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpRead)
	e.Uvarint(uint64(file))
	e.Uvarint(uint64(off))
	return e.Bytes()
}

// WriteReq encodes a block write; seed determinizes the written pattern.
func WriteReq(file, off int, seed uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpWrite)
	e.Uvarint(uint64(file))
	e.Uvarint(uint64(off))
	e.Uvarint(seed)
	return e.Bytes()
}
