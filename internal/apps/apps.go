// Package apps registers the paper's six evaluation applications (§6.3,
// Table 1) behind one descriptor type so the benchmark harness and the
// command-line tools can drive any of them uniformly.
package apps

import (
	"fmt"
	"math/rand"

	"rex/internal/apps/hashdb"
	"rex/internal/apps/lockserver"
	"rex/internal/apps/lsmkv"
	"rex/internal/apps/memcache"
	"rex/internal/apps/simplefs"
	"rex/internal/apps/thumbnail"
	"rex/internal/core"
)

// Workload generates a deterministic stream of requests for one client.
// Instances are not safe for concurrent use: give each client its own,
// seeded distinctly.
type Workload interface {
	// Setup returns prefill requests to run once before measurement.
	Setup() [][]byte
	// Next returns the next update request body.
	Next() []byte
	// Query returns a read-only query body (for the §6.5 experiments).
	Query() []byte
}

// App describes one benchmark application.
type App struct {
	Name       string
	Title      string
	Primitives []string // Table 1
	Timers     int
	Factory    core.Factory
	// NewWorkload builds a per-client workload; distinct clients should
	// pass distinct seeds.
	NewWorkload func(seed int64) Workload
	// ClientsPerThread sizes the closed-loop client population for
	// benchmarks: light handlers need many concurrent clients to keep a
	// worker busy across the commit latency (§6.2: "enough clients ...
	// so that the machines are fully loaded"). 0 means 4.
	ClientsPerThread int
}

// All returns the six applications in the paper's Figure 7 order.
func All() []App {
	return []App{
		Thumbnail(),
		LockServer(),
		LSMKV(),
		HashDB(),
		SimpleFS(),
		Memcache(),
	}
}

// Get looks an application up by name.
func Get(name string) (App, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Thumbnail is the compute-bound thumbnail server (Fig. 7a).
func Thumbnail() App {
	return App{
		Name:             "thumbnail",
		Title:            "Thumbnail Server",
		ClientsPerThread: 4,
		Primitives:       thumbnail.Primitives(),
		Factory:          thumbnail.New(thumbnail.DefaultOptions()),
		NewWorkload: func(seed int64) Workload {
			return &thumbWorkload{rng: rand.New(rand.NewSource(seed))}
		},
	}
}

type thumbWorkload struct{ rng *rand.Rand }

func (w *thumbWorkload) Setup() [][]byte { return nil }
func (w *thumbWorkload) Next() []byte {
	id := uint64(w.rng.Intn(100000))
	srcLen := uint64(20000 + w.rng.Intn(80000))
	return thumbnail.MakeReq(id, srcLen)
}
func (w *thumbWorkload) Query() []byte {
	return thumbnail.StatReq(uint64(w.rng.Intn(100000)))
}

// LockServer is the Chubby-like lease service (Fig. 7b): 90% lease
// renewals, 10% create/update with 100 B – 5 KB contents.
func LockServer() App {
	return LockServerWith(lockserver.DefaultOptions())
}

// LockServerWith builds the lock server with custom options (the §6.5
// query experiment uses a more contended configuration).
func LockServerWith(opts lockserver.Options) App {
	return App{
		Name:             "lockserver",
		Title:            "Lock Server",
		ClientsPerThread: 64,
		Primitives:       lockserver.Primitives(),
		Factory:          lockserver.New(opts),
		NewWorkload: func(seed int64) Workload {
			return &lockWorkload{rng: rand.New(rand.NewSource(seed)), client: uint64(seed&0xffff) + 1}
		},
	}
}

const lockNames = 2000

type lockWorkload struct {
	rng    *rand.Rand
	client uint64
}

func (w *lockWorkload) name() string {
	return fmt.Sprintf("file-%04d", w.rng.Intn(lockNames))
}

func (w *lockWorkload) content() []byte {
	n := 100 + w.rng.Intn(5*1024-100)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(w.rng.Intn(256))
	}
	return b
}

func (w *lockWorkload) Setup() [][]byte {
	var reqs [][]byte
	for i := 0; i < lockNames; i++ {
		reqs = append(reqs, lockserver.CreateReq(fmt.Sprintf("file-%04d", i), w.client, []byte("init")))
	}
	return reqs
}

func (w *lockWorkload) Next() []byte {
	r := w.rng.Intn(100)
	switch {
	case r < 90:
		return lockserver.RenewReq(w.name(), w.client)
	case r < 95:
		return lockserver.CreateReq(w.name(), w.client, w.content())
	default:
		return lockserver.UpdateReq(w.name(), w.client, w.content())
	}
}

func (w *lockWorkload) Query() []byte { return lockserver.InfoReq(w.name()) }

// kvWorkload is shared by the three key/value stores: 16-byte keys,
// 100-byte values (§6.3).
type kvWorkload struct {
	rng     *rand.Rand
	keys    int
	prefill int
	getPct  int
	set     func(key string, val []byte) []byte
	get     func(key string) []byte
	del     func(key string) []byte
}

func (w *kvWorkload) key() string {
	return fmt.Sprintf("key-%011d", w.rng.Intn(w.keys))
}

func (w *kvWorkload) val() []byte {
	b := make([]byte, 100)
	for i := range b {
		b[i] = byte('a' + w.rng.Intn(26))
	}
	return b
}

func (w *kvWorkload) Setup() [][]byte {
	var reqs [][]byte
	for i := 0; i < w.prefill; i++ {
		reqs = append(reqs, w.set(fmt.Sprintf("key-%011d", i), w.val()))
	}
	return reqs
}

func (w *kvWorkload) Next() []byte {
	r := w.rng.Intn(100)
	switch {
	case r < w.getPct:
		return w.get(w.key())
	case r < w.getPct+2:
		return w.del(w.key())
	default:
		return w.set(w.key(), w.val())
	}
}

func (w *kvWorkload) Query() []byte { return w.get(w.key()) }

// LSMKV is the LevelDB-style store (Fig. 7c).
func LSMKV() App {
	return App{
		Name:             "lsmkv",
		Title:            "LevelDB-style LSM KV",
		ClientsPerThread: 48,
		Primitives:       lsmkv.Primitives(),
		Timers:           lsmkv.Timers(),
		Factory:          lsmkv.New(lsmkv.DefaultOptions()),
		NewWorkload: func(seed int64) Workload {
			return &kvWorkload{
				rng: rand.New(rand.NewSource(seed)), keys: 50000, prefill: 2000, getPct: 50,
				set: lsmkv.PutReq, get: lsmkv.GetReq, del: lsmkv.DelReq,
			}
		},
	}
}

// HashDB is the Kyoto-Cabinet-style store (Fig. 7d).
func HashDB() App {
	return App{
		Name:             "hashdb",
		Title:            "Kyoto-Cabinet-style HashDB",
		ClientsPerThread: 48,
		Primitives:       hashdb.Primitives(),
		Timers:           hashdb.Timers(),
		Factory:          hashdb.New(hashdb.DefaultOptions()),
		NewWorkload: func(seed int64) Workload {
			return &kvWorkload{
				rng: rand.New(rand.NewSource(seed)), keys: 50000, prefill: 2000, getPct: 50,
				set: hashdb.SetReq, get: hashdb.GetReq, del: hashdb.DelReq,
			}
		},
	}
}

// HashDBDisjoint is the conflict-class benchmark variant of HashDB: every
// client works a small private key range, so requests land in pairwise
// disjoint conflict classes and — with elision on — the slice-lock events
// vanish from the committed trace. Short keys and 1-byte values keep the
// deltas lock-dominated, so the measured delta size isolates the tracing
// overhead rather than the payload.
func HashDBDisjoint() App {
	return App{
		Name:             "hashdb-disjoint",
		Title:            "HashDB, per-client disjoint keys",
		ClientsPerThread: 48,
		Primitives:       hashdb.Primitives(),
		Timers:           hashdb.Timers(),
		Factory:          hashdb.New(hashdb.DefaultOptions()),
		NewWorkload: func(seed int64) Workload {
			return &disjointWorkload{rng: rand.New(rand.NewSource(seed)), owner: seed, keys: 64, getPct: 95}
		},
	}
}

// disjointWorkload drives one client over a private key range.
type disjointWorkload struct {
	rng    *rand.Rand
	owner  int64
	keys   int
	getPct int
}

func (w *disjointWorkload) key() string {
	return fmt.Sprintf("d%d-%d", w.owner, w.rng.Intn(w.keys))
}

func (w *disjointWorkload) Setup() [][]byte { return nil }

func (w *disjointWorkload) Next() []byte {
	if w.rng.Intn(100) < w.getPct {
		return hashdb.GetReq(w.key())
	}
	return hashdb.SetReq(w.key(), []byte{byte('a' + w.rng.Intn(26))})
}

func (w *disjointWorkload) Query() []byte { return hashdb.GetReq(w.key()) }

// SimpleFS is the simple file system (Fig. 7e): 16 KB synchronized random
// I/O, reads:writes = 1:4.
func SimpleFS() App {
	opts := simplefs.DefaultOptions()
	return App{
		Name:             "simplefs",
		Title:            "Simple File System",
		ClientsPerThread: 16,
		Primitives:       simplefs.Primitives(),
		Factory:          simplefs.New(opts),
		NewWorkload: func(seed int64) Workload {
			return &fsWorkload{rng: rand.New(rand.NewSource(seed)), opts: opts}
		},
	}
}

type fsWorkload struct {
	rng  *rand.Rand
	opts simplefs.Options
}

func (w *fsWorkload) pick() (int, int) {
	file := w.rng.Intn(w.opts.Files)
	blocks := w.opts.FileSize / simplefs.BlockSize
	off := w.rng.Intn(blocks) * simplefs.BlockSize
	return file, off
}

func (w *fsWorkload) Setup() [][]byte { return nil }

func (w *fsWorkload) Next() []byte {
	file, off := w.pick()
	if w.rng.Intn(5) == 0 { // 1:4 read:write
		return simplefs.ReadReq(file, off)
	}
	return simplefs.WriteReq(file, off, w.rng.Uint64())
}

func (w *fsWorkload) Query() []byte {
	file, off := w.pick()
	return simplefs.ReadReq(file, off)
}

// Memcache is the memcached-style cache (Fig. 7f): coarse global locks,
// the paper's does-not-scale case.
func Memcache() App {
	return App{
		Name:             "memcache",
		Title:            "Memcached-style Cache",
		ClientsPerThread: 48,
		Primitives:       memcache.Primitives(),
		Timers:           memcache.Timers(),
		Factory:          memcache.New(memcache.DefaultOptions()),
		NewWorkload: func(seed int64) Workload {
			return &kvWorkload{
				rng: rand.New(rand.NewSource(seed)), keys: 50000, prefill: 2000, getPct: 70,
				set: memcache.SetReq, get: memcache.GetReq, del: memcache.DelReq,
			}
		},
	}
}
