// Package thumbnail implements the paper's thumbnail server (§6.3): a
// compute-intensive service that renders picture thumbnails, keeps picture
// metadata in a sharded in-memory hash table, and caches rendered
// thumbnails in an LRU cache. All shared structures are protected by Rex
// locks (Table 1: Lock).
package thumbnail

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/wire"
)

// Op codes for request bodies.
const (
	OpMake byte = 1 // render a thumbnail: id, sourceLen
	OpStat byte = 2 // fetch metadata: id
)

// Options configure the server.
type Options struct {
	// MetaShards is the number of metadata hash-table shards (and locks).
	MetaShards int
	// CacheCap bounds the LRU thumbnail cache (entries).
	CacheCap int
	// RenderCost is the CPU time to render one thumbnail.
	RenderCost time.Duration
}

// DefaultOptions mirror the paper's compute-bound behaviour at simulation
// scale.
func DefaultOptions() Options {
	return Options{MetaShards: 64, CacheCap: 4096, RenderCost: 1 * time.Millisecond}
}

type meta struct {
	Renders uint32
	Digest  uint64
}

// Server is the thumbnail state machine.
type Server struct {
	opts Options

	shardLocks []*rexsync.Lock
	shards     []map[uint64]meta

	cacheLock *rexsync.Lock
	cache     map[uint64]uint64 // id → digest
	cacheLRU  []uint64          // simple FIFO-approximated LRU ring
}

// New returns a core.Factory for the thumbnail server.
func New(opts Options) core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		s := &Server{opts: opts}
		for i := 0; i < opts.MetaShards; i++ {
			// Shard i is owned by conflict class i+1 (see ClassifyConflict):
			// only that class's handlers touch it and there are no timers,
			// so same-id requests elide the shard-lock events. The LRU cache
			// lock is shared by every class and stays unowned/fully traced.
			s.shardLocks = append(s.shardLocks, rexsync.NewLockInClass(rt, fmt.Sprintf("thumb-meta-%d", i), uint32(i)+1))
			s.shards = append(s.shards, make(map[uint64]meta))
		}
		s.cacheLock = rexsync.NewLock(rt, "thumb-cache")
		s.cache = make(map[uint64]uint64)
		return s
	}
}

// Primitives lists the Rex primitives used (Table 1).
func Primitives() []string { return []string{"Lock"} }

func (s *Server) shard(id uint64) int {
	return int((id * 0x9e3779b97f4a7c15) >> 40 % uint64(s.opts.MetaShards))
}

// render burns CPU proportional to the source size and produces a
// deterministic digest.
func (s *Server) render(ctx *core.Ctx, id, srcLen uint64) uint64 {
	ctx.Compute(s.opts.RenderCost)
	d := id ^ 0xdeadbeefcafef00d
	for i := uint64(0); i < 8; i++ {
		d = d*6364136223846793005 + srcLen + i
	}
	return d
}

// Apply implements core.StateMachine.
func (s *Server) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(req)
	op := d.Byte()
	id := d.Uvarint()
	switch op {
	case OpMake:
		srcLen := d.Uvarint()
		// Render outside any lock: the heavy compute must parallelize.
		digest := s.render(ctx, id, srcLen)
		sh := s.shard(id)
		s.shardLocks[sh].Lock(w)
		m := s.shards[sh][id]
		m.Renders++
		m.Digest = digest
		s.shards[sh][id] = m
		s.shardLocks[sh].Unlock(w)
		s.cacheLock.Lock(w)
		if _, ok := s.cache[id]; !ok {
			if len(s.cacheLRU) >= s.opts.CacheCap {
				evict := s.cacheLRU[0]
				s.cacheLRU = s.cacheLRU[1:]
				delete(s.cache, evict)
			}
			s.cacheLRU = append(s.cacheLRU, id)
		}
		s.cache[id] = digest
		s.cacheLock.Unlock(w)
		e := wire.NewEncoder(nil)
		e.Uvarint(digest)
		return e.Bytes()
	case OpStat:
		sh := s.shard(id)
		s.shardLocks[sh].Lock(w)
		m := s.shards[sh][id]
		s.shardLocks[sh].Unlock(w)
		e := wire.NewEncoder(nil)
		e.Uvarint(uint64(m.Renders))
		e.Uvarint(m.Digest)
		return e.Bytes()
	}
	return []byte{0xff}
}

// Query implements core.QueryHandler: cached-thumbnail lookup.
func (s *Server) Query(ctx *core.Ctx, q []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(q)
	_ = d.Byte()
	id := d.Uvarint()
	s.cacheLock.Lock(w)
	digest, ok := s.cache[id]
	s.cacheLock.Unlock(w)
	e := wire.NewEncoder(nil)
	e.Bool(ok)
	e.Uvarint(digest)
	return e.Bytes()
}

// ClassifyQuery implements core.QueryClassifier. Query is a pure cache
// peek whatever the request bytes say, so secondaries may always serve
// it.
func (s *Server) ClassifyQuery([]byte) core.QueryClass { return core.QueryFollowerOK }

// ClassifyConflict implements core.ConflictClassifier: renders and stats
// conflict only within their metadata shard (class = shard index + 1).
// The shared LRU cache they also touch is guarded by the unowned — hence
// fully traced — cache lock, which is what the classification contract
// requires for cross-class shared state.
func (s *Server) ClassifyConflict(req []byte) core.ConflictClass {
	d := wire.NewDecoder(req)
	op := d.Byte()
	id := d.Uvarint()
	if d.Err() != nil {
		return core.ConflictAll
	}
	switch op {
	case OpMake, OpStat:
		return core.ConflictClass(s.shard(id)) + 1
	}
	return core.ConflictAll
}

// WriteCheckpoint implements core.StateMachine.
func (s *Server) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	for _, m := range s.shards {
		ids := make([]uint64, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.Uvarint(uint64(len(ids)))
		for _, id := range ids {
			e.Uvarint(id)
			e.Uvarint(uint64(m[id].Renders))
			e.Uvarint(m[id].Digest)
		}
	}
	e.Uvarint(uint64(len(s.cacheLRU)))
	for _, id := range s.cacheLRU {
		e.Uvarint(id)
		e.Uvarint(s.cache[id])
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadCheckpoint implements core.StateMachine.
func (s *Server) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	for i := range s.shards {
		n := d.Uvarint()
		s.shards[i] = make(map[uint64]meta, n)
		for j := uint64(0); j < n; j++ {
			id := d.Uvarint()
			s.shards[i][id] = meta{Renders: uint32(d.Uvarint()), Digest: d.Uvarint()}
		}
	}
	n := d.Uvarint()
	s.cache = make(map[uint64]uint64, n)
	s.cacheLRU = s.cacheLRU[:0]
	for j := uint64(0); j < n; j++ {
		id := d.Uvarint()
		s.cache[id] = d.Uvarint()
		s.cacheLRU = append(s.cacheLRU, id)
	}
	return d.Err()
}

// MakeReq encodes a render request.
func MakeReq(id, srcLen uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpMake)
	e.Uvarint(id)
	e.Uvarint(srcLen)
	return e.Bytes()
}

// StatReq encodes a metadata request.
func StatReq(id uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpStat)
	e.Uvarint(id)
	return e.Bytes()
}
