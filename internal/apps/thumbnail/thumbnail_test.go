package thumbnail

import (
	"bytes"
	"testing"
	"time"

	"rex/internal/core"
	"rex/internal/sim"
	"rex/internal/wire"
)

func smallOpts() Options {
	o := DefaultOptions()
	o.RenderCost = 10 * time.Microsecond
	o.CacheCap = 4
	o.MetaShards = 4
	return o
}

func newHost(t *testing.T, e *sim.Env, opts Options) *core.NativeHost {
	t.Helper()
	h, err := core.NewNativeHost(e, 2, 0, 1, New(opts))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMakeAndStat(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, smallOpts())
		d := wire.NewDecoder(h.Apply(0, MakeReq(7, 1000)))
		digest := d.Uvarint()
		if digest == 0 {
			t.Error("zero digest")
		}
		h.Apply(0, MakeReq(7, 1000))
		sd := wire.NewDecoder(h.Apply(0, StatReq(7)))
		renders := sd.Uvarint()
		got := sd.Uvarint()
		if renders != 2 {
			t.Errorf("renders = %d, want 2", renders)
		}
		if got != digest {
			t.Errorf("digest mismatch: %x vs %x", got, digest)
		}
		// Deterministic rendering: same inputs, same digest.
		h2 := newHost(t, e, smallOpts())
		d2 := wire.NewDecoder(h2.Apply(0, MakeReq(7, 1000)))
		if d2.Uvarint() != digest {
			t.Error("render not deterministic")
		}
	})
}

func TestCacheEvicts(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, smallOpts())
		for id := uint64(0); id < 6; id++ {
			h.Apply(0, MakeReq(id, 100))
		}
		s := h.SM.(*Server)
		if len(s.cache) != 4 {
			t.Errorf("cache size = %d, want cap 4", len(s.cache))
		}
		// Query for a cached entry.
		d := wire.NewDecoder(s.Query(h.Ctx(0), StatReq(5)))
		if !d.Bool() {
			t.Error("recently made thumbnail not cached")
		}
	})
}

func TestCheckpointRoundTrip(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, smallOpts())
		for id := uint64(0); id < 10; id++ {
			h.Apply(0, MakeReq(id, 500))
		}
		var buf bytes.Buffer
		if err := h.SM.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		h2 := newHost(t, e, smallOpts())
		if err := h2.SM.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		h2.SM.WriteCheckpoint(&buf2)
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("checkpoint round trip not idempotent")
		}
		a := wire.NewDecoder(h.Apply(0, StatReq(3)))
		b := wire.NewDecoder(h2.Apply(0, StatReq(3)))
		ar, ad := a.Uvarint(), a.Uvarint()
		br, bd := b.Uvarint(), b.Uvarint()
		if ar != br || ad != bd {
			t.Errorf("restored stat differs: %d/%x vs %d/%x", ar, ad, br, bd)
		}
	})
}
