package apps

import (
	"fmt"
	"strconv"

	"rex/internal/apps/hashdb"
	"rex/internal/apps/lockserver"
	"rex/internal/apps/lsmkv"
	"rex/internal/apps/memcache"
	"rex/internal/apps/simplefs"
	"rex/internal/apps/thumbnail"
	"rex/internal/wire"
)

// Command encodes a human-readable operation ("put k v", "renew name", …)
// into the application's request format; cmd/rexctl uses it.
func Command(appName string, args []string) ([]byte, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("apps: empty command")
	}
	op := args[0]
	rest := args[1:]
	need := func(n int) error {
		if len(rest) != n {
			return fmt.Errorf("apps: %s %s takes %d argument(s)", appName, op, n)
		}
		return nil
	}
	switch appName {
	case "lsmkv", "hashdb", "memcache":
		set := map[string]func(string, []byte) []byte{
			"lsmkv": lsmkv.PutReq, "hashdb": hashdb.SetReq, "memcache": memcache.SetReq,
		}[appName]
		get := map[string]func(string) []byte{
			"lsmkv": lsmkv.GetReq, "hashdb": hashdb.GetReq, "memcache": memcache.GetReq,
		}[appName]
		del := map[string]func(string) []byte{
			"lsmkv": lsmkv.DelReq, "hashdb": hashdb.DelReq, "memcache": memcache.DelReq,
		}[appName]
		switch op {
		case "put", "set":
			if err := need(2); err != nil {
				return nil, err
			}
			return set(rest[0], []byte(rest[1])), nil
		case "get":
			if err := need(1); err != nil {
				return nil, err
			}
			return get(rest[0]), nil
		case "del":
			if err := need(1); err != nil {
				return nil, err
			}
			return del(rest[0]), nil
		}
	case "lockserver":
		switch op {
		case "renew":
			if err := need(2); err != nil {
				return nil, err
			}
			client, _ := strconv.ParseUint(rest[1], 10, 64)
			return lockserver.RenewReq(rest[0], client), nil
		case "create":
			if err := need(3); err != nil {
				return nil, err
			}
			client, _ := strconv.ParseUint(rest[1], 10, 64)
			return lockserver.CreateReq(rest[0], client, []byte(rest[2])), nil
		case "update":
			if err := need(3); err != nil {
				return nil, err
			}
			client, _ := strconv.ParseUint(rest[1], 10, 64)
			return lockserver.UpdateReq(rest[0], client, []byte(rest[2])), nil
		case "info":
			if err := need(1); err != nil {
				return nil, err
			}
			return lockserver.InfoReq(rest[0]), nil
		}
	case "thumbnail":
		switch op {
		case "make":
			if err := need(2); err != nil {
				return nil, err
			}
			id, _ := strconv.ParseUint(rest[0], 10, 64)
			srcLen, _ := strconv.ParseUint(rest[1], 10, 64)
			return thumbnail.MakeReq(id, srcLen), nil
		case "stat":
			if err := need(1); err != nil {
				return nil, err
			}
			id, _ := strconv.ParseUint(rest[0], 10, 64)
			return thumbnail.StatReq(id), nil
		}
	case "simplefs":
		switch op {
		case "read":
			if err := need(2); err != nil {
				return nil, err
			}
			file, _ := strconv.Atoi(rest[0])
			off, _ := strconv.Atoi(rest[1])
			return simplefs.ReadReq(file, off), nil
		case "write":
			if err := need(3); err != nil {
				return nil, err
			}
			file, _ := strconv.Atoi(rest[0])
			off, _ := strconv.Atoi(rest[1])
			seed, _ := strconv.ParseUint(rest[2], 10, 64)
			return simplefs.WriteReq(file, off, seed), nil
		}
	}
	return nil, fmt.Errorf("apps: unknown command %q for application %q", op, appName)
}

// FormatResponse renders an application response for humans.
func FormatResponse(appName, op string, resp []byte) string {
	switch appName {
	case "lsmkv", "hashdb", "memcache":
		if op == "get" {
			d := wire.NewDecoder(resp)
			ok := d.Bool()
			v := d.BytesVal()
			if d.Err() != nil {
				return fmt.Sprintf("%x", resp)
			}
			if !ok {
				return "(not found)"
			}
			return string(v)
		}
		return "ok"
	case "lockserver":
		if op == "info" {
			d := wire.NewDecoder(resp)
			if !d.Bool() {
				return "(no such file)"
			}
			holder := d.Uvarint()
			expiry := d.Uvarint()
			renews := d.Uvarint()
			size := d.Uvarint()
			return fmt.Sprintf("holder=%d expiry=%dns renews=%d size=%dB", holder, expiry, renews, size)
		}
		if len(resp) == 1 {
			return map[byte]string{0: "failed", 1: "ok", 2: "held by another client"}[resp[0]]
		}
	case "thumbnail":
		d := wire.NewDecoder(resp)
		if op == "make" {
			return fmt.Sprintf("digest=%x", d.Uvarint())
		}
		if op == "stat" {
			renders := d.Uvarint()
			digest := d.Uvarint()
			return fmt.Sprintf("renders=%d digest=%x", renders, digest)
		}
	case "simplefs":
		if op == "read" {
			d := wire.NewDecoder(resp)
			return fmt.Sprintf("checksum=%x", d.Uvarint())
		}
		return "ok"
	}
	return fmt.Sprintf("%x", resp)
}
