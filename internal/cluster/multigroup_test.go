package cluster_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/cluster"
	"rex/internal/shard"
	"rex/internal/sim"
)

// TestMultiClusterShardedFailover is the sharding end-to-end test (run
// under -race in CI): four groups over four nodes, keyed writes spread
// across all groups, then group 0's primary is killed. The other groups
// must keep serving without interruption while group 0 fails over, and
// every key must read back from its owning group afterwards.
func TestMultiClusterShardedFailover(t *testing.T) {
	e := sim.New(2)
	var failure string
	fail := func(format string, args ...any) {
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
	}
	e.Run(func() {
		m, err := shard.NewShardMap(1, 4, 4, 3)
		if err != nil {
			fail("map: %v", err)
			return
		}
		mc, err := cluster.NewMulti(e, hashdb.New(hashdb.DefaultOptions()), m, cluster.Options{
			Workers:         2,
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            7,
		})
		if err != nil {
			fail("new multi: %v", err)
			return
		}
		if err := mc.Start(); err != nil {
			fail("start: %v", err)
			return
		}
		defer mc.Stop()
		if err := mc.WaitAllPrimaries(10 * time.Second); err != nil {
			fail("%v", err)
			return
		}

		router := mc.NewRouter(100)
		const keys = 64
		covered := make(map[int]bool)
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d", i)
			covered[router.GroupFor([]byte(key))] = true
			if _, err := router.Do([]byte(key), hashdb.SetReq(key, []byte(fmt.Sprintf("v%d", i)))); err != nil {
				fail("set %s: %v", key, err)
				return
			}
		}
		if len(covered) != 4 {
			fail("64 keys covered only %d of 4 groups", len(covered))
			return
		}

		// Kill group 0's primary. The other groups share nodes with group 0
		// but must not notice: each write below gets a tight deadline that a
		// stalled group would blow.
		if _, err := mc.CrashGroupPrimary(0); err != nil {
			fail("crash: %v", err)
			return
		}
		for g := 1; g < 4; g++ {
			cl := mc.Groups[g].NewClient(uint64(900 + g))
			key := fmt.Sprintf("during-%d", g)
			if _, err := cl.DoTimeout(hashdb.SetReq(key, []byte("x")), 2*time.Second); err != nil {
				fail("group %d stalled during group 0 failover: %v", g, err)
				return
			}
		}

		// Group 0 itself fails over and serves again.
		if _, err := mc.Groups[0].WaitPrimary(10 * time.Second); err != nil {
			fail("group 0 failover: %v", err)
			return
		}
		cl0 := mc.Groups[0].NewClient(990)
		if _, err := cl0.DoTimeout(hashdb.SetReq("after-failover", []byte("y")), 10*time.Second); err != nil {
			fail("group 0 write after failover: %v", err)
			return
		}

		// Every key reads back from its owning group's new state.
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d", i)
			resp, err := router.Do([]byte(key), hashdb.GetReq(key))
			if err != nil {
				fail("get %s: %v", key, err)
				return
			}
			if want := []byte(fmt.Sprintf("v%d", i)); !bytes.Contains(resp, want) {
				fail("get %s = %q, want value %q", key, resp, want)
				return
			}
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}

// TestMultiClusterRotatesPrimaries checks that the election bias realizes
// the map's placement: with no faults, each group elects its preferred
// primary (replica 0), whose node rotates across the cluster.
func TestMultiClusterRotatesPrimaries(t *testing.T) {
	e := sim.New(2)
	var failure string
	e.Run(func() {
		m, _ := shard.NewShardMap(1, 4, 4, 3)
		mc, err := cluster.NewMulti(e, hashdb.New(hashdb.DefaultOptions()), m, cluster.Options{
			Workers:         2,
			Timers:          hashdb.Timers(),
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            11,
		})
		if err != nil {
			failure = err.Error()
			return
		}
		if err := mc.Start(); err != nil {
			failure = err.Error()
			return
		}
		defer mc.Stop()
		if err := mc.WaitAllPrimaries(10 * time.Second); err != nil {
			failure = err.Error()
			return
		}
		nodes := make(map[int]bool)
		for g := 0; g < 4; g++ {
			p := mc.Primary(g)
			if p != 0 {
				failure = fmt.Sprintf("group %d elected replica %d, want preferred primary 0", g, p)
				return
			}
			nodes[m.Placement[g][p]] = true
		}
		if len(nodes) != 4 {
			failure = fmt.Sprintf("primaries on %d distinct nodes, want 4", len(nodes))
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}
