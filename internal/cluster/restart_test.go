package cluster_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/sim"
	"rex/internal/wire"
)

// ledger is an order-sensitive state machine: any disagreement in apply
// order or a lost/duplicated entry across restarts shows up as a
// byte-level state divergence.
type ledger struct {
	mu      *rexsync.Lock
	entries []string
}

func newLedger() core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		return &ledger{mu: rexsync.NewLock(rt, "ledger")}
	}
}

func (l *ledger) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	ctx.Compute(50 * time.Microsecond)
	l.mu.Lock(w)
	l.entries = append(l.entries, string(req))
	l.mu.Unlock(w)
	return []byte{1}
}

func (l *ledger) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	e.Uvarint(uint64(len(l.entries)))
	for _, s := range l.entries {
		e.BytesVal([]byte(s))
	}
	_, err := w.Write(e.Bytes())
	return err
}

func (l *ledger) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	n := d.Uvarint()
	l.entries = nil
	for i := uint64(0); i < n; i++ {
		l.entries = append(l.entries, string(d.BytesVal()))
	}
	return d.Err()
}

// TestRepeatedRestartCycles crashes and restarts replicas — including the
// primary, forcing an election and a promotion each cycle — while clients
// keep writing, with checkpointing enabled so restarts recover from a
// snapshot plus WAL tail (and may have to bridge a compaction gap). After
// the churn the replicas must converge on one state and satisfy the
// prefix property.
func TestRepeatedRestartCycles(t *testing.T) {
	const cycles = 3
	e := sim.New(4)
	var failure string
	e.Run(func() {
		c := cluster.New(e, newLedger(), cluster.Options{
			Replicas:        3,
			Workers:         2,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 150 * time.Millisecond,
			Seed:            7,
		})
		if err := c.Start(); err != nil {
			failure = fmt.Sprintf("start: %v", err)
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			failure = err.Error()
			return
		}

		var done bool
		var sent int
		load := env.GoEach(e, "restart-client", 2, func(ci int) {
			cl := c.NewClient(uint64(40 + ci))
			for k := 0; !done; k++ {
				if _, err := cl.DoTimeout([]byte(fmt.Sprintf("c%d-n%d", ci, k)), 10*time.Second); err != nil {
					failure = fmt.Sprintf("client %d op %d: %v", ci, k, err)
					return
				}
				sent++
				e.Sleep(3 * time.Millisecond)
			}
		})

		for cycle := 0; cycle < cycles && failure == ""; cycle++ {
			e.Sleep(250 * time.Millisecond)
			// Kill the primary: the survivors must elect and promote a new
			// one while the clients fail over to it.
			p := c.Primary()
			if p < 0 {
				failure = fmt.Sprintf("cycle %d: no primary", cycle)
				break
			}
			c.Crash(p)
			np, err := c.WaitPrimary(5 * time.Second)
			if err != nil {
				failure = fmt.Sprintf("cycle %d after crashing primary %d: %v", cycle, p, err)
				break
			}
			e.Sleep(100 * time.Millisecond)
			if err := c.Restart(p); err != nil {
				failure = fmt.Sprintf("cycle %d restarting %d: %v", cycle, p, err)
				break
			}
			e.Sleep(250 * time.Millisecond)
			// Bounce a secondary too, so recovery runs from a snapshot that
			// is not the promotion point.
			sec := -1
			for i := range c.Replicas {
				if i != np && c.Replicas[i] != nil {
					sec = i
					break
				}
			}
			if sec >= 0 {
				c.Crash(sec)
				e.Sleep(150 * time.Millisecond)
				if err := c.Restart(sec); err != nil {
					failure = fmt.Sprintf("cycle %d restarting secondary %d: %v", cycle, sec, err)
					break
				}
			}
		}
		done = true
		load.Wait()
		if failure != "" {
			return
		}
		if sent == 0 {
			failure = "no operations completed"
			return
		}

		states, faults, err := c.StableStates(30 * time.Second)
		if err != nil {
			failure = err.Error()
			return
		}
		for i, ferr := range faults {
			failure = fmt.Sprintf("replica %d faulted: %v", i, ferr)
			return
		}
		if len(states) != 3 {
			failure = fmt.Sprintf("only %d replicas alive after churn", len(states))
			return
		}
		if v := check.StateAgreement(states); len(v) != 0 {
			failure = v[0]
			return
		}
		var logs []check.ChosenLog
		for i, r := range c.Replicas {
			if r == nil {
				continue
			}
			base, vals := r.ChosenLog()
			logs = append(logs, check.ChosenLog{Replica: i, Base: base, Vals: vals})
		}
		if v := check.CheckPrefix(logs); len(v) != 0 {
			failure = v[0]
			return
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}
