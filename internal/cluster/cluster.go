// Package cluster assembles in-process Rex clusters — replicas, a
// simulated network, per-replica durable state, and retrying clients —
// shared by integration tests, benchmarks, and examples.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/overload"
	"rex/internal/readpath"
	"rex/internal/reconfig"
	"rex/internal/retry"
	"rex/internal/storage"
	"rex/internal/transport"
)

// Options tune the cluster; zero values take defaults suited to the
// simulator.
type Options struct {
	Replicas        int
	Workers         int
	Timers          int
	ReadWorkers     int
	NetDelay        time.Duration
	ProposeEvery    time.Duration
	PipelineDepth   int
	HeartbeatEvery  time.Duration
	ElectionTimeout time.Duration
	// LeaseDuration/ClockSkewBound/ReadWaitTimeout tune the read path
	// (core.Config); zero takes the core defaults, negative LeaseDuration
	// disables the quorum read lease.
	LeaseDuration   time.Duration
	ClockSkewBound  time.Duration
	ReadWaitTimeout time.Duration
	CheckpointEvery time.Duration
	// MaxLogInstances is the log-growth checkpoint floor
	// (core.Config.MaxLogInstancesWithoutCheckpoint): 0 takes the core
	// default, negative disables it.
	MaxLogInstances int64
	StatusEvery     time.Duration
	MaxOutstanding  int
	LagInstances    uint64
	LagEvents       uint64
	// AdmissionTarget/AdmissionInterval/MaxAdmissionWaiters tune the
	// primary's CoDel admission gate (core.Config); zero takes the core
	// defaults, negative AdmissionTarget disables shedding.
	AdmissionTarget     time.Duration
	AdmissionInterval   time.Duration
	MaxAdmissionWaiters int
	Seed            int64
	DisableChecks   bool
	DisablePruning  bool
	TotalOrderTry   bool
	Logf            func(string, ...any)
	// NewLog and NewSnapshots build replica i's durable state; defaults are
	// in-memory stores. The chaos engine swaps in fault-injecting wrappers.
	NewLog       func(i int) storage.Log
	NewSnapshots func(i int) storage.SnapshotStore
	// Endpoints, when set, supplies replica i's network attachment instead
	// of a cluster-private transport.Network (Net stays nil). The shard
	// package uses this to run one group over a node-level endpoint mesh
	// shared with other groups; each call must return a fresh endpoint
	// (Restart relies on that for an empty inbox).
	Endpoints func(i int) transport.Endpoint
	// Machines, when set (one entry per replica), pins replicas to these
	// pre-created simulator machines instead of adding a machine per
	// replica. The shard package uses this so every group hosted on one
	// node shares that node's CPU cores, like colocated processes do.
	Machines []int
	// ElectionTimeoutOf, when set, overrides ElectionTimeout per replica.
	// The shard package biases replica 0 (the map's preferred primary)
	// with a shorter timeout so per-group primaries land where the
	// placement rotation put them.
	ElectionTimeoutOf func(i int) time.Duration
	// UnsafeReplayNoEdgeWaits injects a replication bug (replay releases
	// events before their causal predecessors) so tests can prove the
	// consistency checker catches real divergence. Never set outside tests.
	UnsafeReplayNoEdgeWaits bool
	// DisableConflictElision keeps class-owned lock events in the trace
	// (core.Config.DisableConflictElision); benchmarks use it to measure
	// the delta-size win of conflict-class elision. Must be identical on
	// every replica.
	DisableConflictElision bool
	// LiveRebalance (NewMulti only) wraps every group's application with
	// the rebalance ownership layer (internal/rebalance): the map gets
	// hash ranges, group 0 hosts the map consensus sequence, routers from
	// NewRouter speak the rebalance envelope, and NewCoordinator can
	// split/merge/move ranges under traffic.
	LiveRebalance bool
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.NetDelay == 0 {
		o.NetDelay = 500 * time.Microsecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.NewLog == nil {
		o.NewLog = func(int) storage.Log { return storage.NewMemLog() }
	}
	if o.NewSnapshots == nil {
		o.NewSnapshots = func(int) storage.SnapshotStore { return storage.NewMemSnapshots() }
	}
	return o
}

// machineEnv is implemented by the simulator: independent per-replica CPU
// pools, matching the paper's one-server-per-replica testbed.
type machineEnv interface {
	AddMachine(cores int) int
	GoOn(machine int, name string, fn func())
	Cores() int
}

// Cluster is a running in-process replica group.
//
// The exported slices are indexed by replica id and only ever grow
// (AddNode); mu guards them because growth races concurrent clients.
// Prefer Replica/Size over direct slice access in concurrent contexts.
type Cluster struct {
	Env      env.Env
	Net      *transport.Network
	Opts     Options
	Factory  core.Factory
	Replicas []*core.Replica
	Logs     []storage.Log
	Snaps    []storage.SnapshotStore
	machines []int // simulated machine per replica (-1 without machineEnv)

	mu env.Mutex
}

// Replica returns replica i, or nil if it is down or out of range.
func (c *Cluster) Replica(i int) *core.Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.Replicas) {
		return nil
	}
	return c.Replicas[i]
}

// Size returns the number of replica slots (including crashed ones).
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.Replicas)
}

// live snapshots the replica table for iteration without holding mu.
func (c *Cluster) live() []*core.Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*core.Replica(nil), c.Replicas...)
}

// New builds (but does not start) a cluster.
func New(e env.Env, factory core.Factory, opts Options) *Cluster {
	opts = opts.withDefaults()
	c := &Cluster{
		Env:     e,
		Opts:    opts,
		Factory: factory,
		mu:      e.NewMutex(),
	}
	if opts.Endpoints == nil {
		c.Net = transport.NewNetwork(e, opts.Replicas, opts.NetDelay, opts.Seed)
	}
	for i := 0; i < opts.Replicas; i++ {
		c.Logs = append(c.Logs, opts.NewLog(i))
		c.Snaps = append(c.Snaps, opts.NewSnapshots(i))
		c.Replicas = append(c.Replicas, nil)
		c.machines = append(c.machines, -1)
	}
	if len(opts.Machines) == opts.Replicas {
		copy(c.machines, opts.Machines)
	} else if me, ok := e.(machineEnv); ok {
		// Under the simulator, every replica gets its own machine with as
		// many cores as machine 0 (the paper's identical servers).
		for i := 0; i < opts.Replicas; i++ {
			c.machines[i] = me.AddMachine(me.Cores())
		}
	}
	return c
}

func (c *Cluster) config(i int) core.Config {
	ep := c.Opts.Endpoints
	if ep == nil {
		ep = c.Net.Endpoint
	}
	et := c.Opts.ElectionTimeout
	if c.Opts.ElectionTimeoutOf != nil {
		et = c.Opts.ElectionTimeoutOf(i)
	}
	return core.Config{
		ID:                               i,
		N:                                c.Opts.Replicas,
		Env:                              c.Env,
		Endpoint:                         ep(i),
		Log:                              c.Logs[i],
		Snapshots:                        c.Snaps[i],
		Factory:                          c.Factory,
		Workers:                          c.Opts.Workers,
		Timers:                           c.Opts.Timers,
		ReadWorkers:                      c.Opts.ReadWorkers,
		ProposeEvery:                     c.Opts.ProposeEvery,
		PipelineDepth:                    c.Opts.PipelineDepth,
		HeartbeatEvery:                   c.Opts.HeartbeatEvery,
		ElectionTimeout:                  et,
		LeaseDuration:                    c.Opts.LeaseDuration,
		ClockSkewBound:                   c.Opts.ClockSkewBound,
		ReadWaitTimeout:                  c.Opts.ReadWaitTimeout,
		CheckpointEvery:                  c.Opts.CheckpointEvery,
		StatusEvery:                      c.Opts.StatusEvery,
		MaxLogInstancesWithoutCheckpoint: c.Opts.MaxLogInstances,
		MaxOutstanding:                   c.Opts.MaxOutstanding,
		LagLimitInstances:                c.Opts.LagInstances,
		LagLimitEvents:                   c.Opts.LagEvents,
		AdmissionTarget:                  c.Opts.AdmissionTarget,
		AdmissionInterval:                c.Opts.AdmissionInterval,
		MaxAdmissionWaiters:              c.Opts.MaxAdmissionWaiters,
		DisableVersionChecks:             c.Opts.DisableChecks,
		DisableResultChecks:              c.Opts.DisableChecks,
		DisablePruning:                   c.Opts.DisablePruning,
		TotalOrderTryFail:                c.Opts.TotalOrderTry,
		Seed:                             c.Opts.Seed,
		Logf:                             c.Opts.Logf,
		UnsafeReplayNoEdgeWaits:          c.Opts.UnsafeReplayNoEdgeWaits,
		DisableConflictElision:           c.Opts.DisableConflictElision,
	}
}

// startReplica constructs and starts replica i on its machine (if the
// environment models machines), so its execution and replay compute on its
// own simulated server.
func (c *Cluster) startReplica(i int) error {
	build := func() (*core.Replica, error) {
		r, err := core.NewReplica(c.config(i))
		if err != nil {
			return nil, err
		}
		if err := r.Start(); err != nil {
			return nil, err
		}
		return r, nil
	}
	install := func(r *core.Replica) {
		c.mu.Lock()
		c.Replicas[i] = r
		c.mu.Unlock()
	}
	me, ok := c.Env.(machineEnv)
	if !ok || c.machines[i] < 0 {
		r, err := build()
		if err != nil {
			return err
		}
		install(r)
		return nil
	}
	done := c.Env.NewChan(1)
	me.GoOn(c.machines[i], fmt.Sprintf("replica-%d-boot", i), func() {
		r, err := build()
		if err != nil {
			done.Send(err)
			return
		}
		install(r)
		done.Send(nil)
	})
	v, _ := done.Recv()
	if err, ok := v.(error); ok && err != nil {
		return err
	}
	return nil
}

// Start brings every replica up.
func (c *Cluster) Start() error {
	for i := range c.Replicas {
		if err := c.startReplica(i); err != nil {
			return err
		}
	}
	return nil
}

// Stop shuts every live replica down.
func (c *Cluster) Stop() {
	for _, r := range c.live() {
		if r != nil {
			r.Stop()
		}
	}
}

// Primary returns the current primary's index, or -1.
func (c *Cluster) Primary() int {
	for i, r := range c.live() {
		if r != nil && r.Role() == core.RolePrimary {
			return i
		}
	}
	return -1
}

// WaitPrimary polls until some replica is primary.
func (c *Cluster) WaitPrimary(timeout time.Duration) (int, error) {
	deadline := c.Env.Now() + timeout
	for c.Env.Now() < deadline {
		if p := c.Primary(); p >= 0 {
			return p, nil
		}
		c.Env.Sleep(2 * time.Millisecond)
	}
	return -1, errors.New("cluster: no primary elected in time")
}

// Crash stops replica i and cuts it from the network, preserving its
// durable log and snapshots for a later Restart. With external endpoints
// (Opts.Endpoints) there is no cluster-private network to cut; stopping
// the replica closes its endpoint, which is the process dying.
func (c *Cluster) Crash(i int) {
	if c.Net != nil {
		c.Net.Isolate(i, true)
	}
	c.mu.Lock()
	r := c.Replicas[i]
	c.Replicas[i] = nil
	c.mu.Unlock()
	if r != nil {
		r.Stop()
	}
}

// Restart brings a crashed replica back with its durable state.
func (c *Cluster) Restart(i int) error {
	if c.Replica(i) != nil {
		return fmt.Errorf("cluster: replica %d still running", i)
	}
	if c.Net != nil {
		c.Net.Reset(i) // fresh inbox: the crashed process's socket is gone
		c.Net.Isolate(i, false)
	}
	return c.startReplica(i)
}

// RestartFresh brings replica i back with empty durable state (a replaced
// machine), forcing a checkpoint transfer if the cluster compacted.
func (c *Cluster) RestartFresh(i int) error {
	c.mu.Lock()
	c.Logs[i] = c.Opts.NewLog(i)
	c.Snaps[i] = c.Opts.NewSnapshots(i)
	c.mu.Unlock()
	return c.Restart(i)
}

// reconfigRetryTimeout bounds how long the membership-change helpers below
// chase the primary (elections, an earlier change still in flight).
const reconfigRetryTimeout = 30 * time.Second

// onPrimary runs fn against the current primary, retrying through
// elections and serialization conflicts until it is accepted.
func (c *Cluster) onPrimary(fn func(r *core.Replica) error) error {
	deadline := c.Env.Now() + reconfigRetryTimeout
	var lastErr error = errors.New("cluster: no primary")
	for c.Env.Now() < deadline {
		if p := c.Primary(); p >= 0 {
			if r := c.Replica(p); r != nil {
				err := fn(r)
				if err == nil {
					return nil
				}
				lastErr = err
				var np core.ErrNotPrimary
				retriable := errors.As(err, &np) ||
					errors.Is(err, core.ErrReconfigInFlight) ||
					errors.Is(err, core.ErrStopped)
				if !retriable {
					return err
				}
			}
		}
		c.Env.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: membership change not accepted: %w", lastErr)
}

// addSlot grows the cluster's tables (and network) by one replica slot and
// returns the new id. The replica itself is not started.
func (c *Cluster) addSlot() int {
	c.mu.Lock()
	id := len(c.Replicas)
	c.Replicas = append(c.Replicas, nil)
	c.Logs = append(c.Logs, c.Opts.NewLog(id))
	c.Snaps = append(c.Snaps, c.Opts.NewSnapshots(id))
	machine := -1
	if me, ok := c.Env.(machineEnv); ok && c.machines[0] >= 0 {
		machine = me.AddMachine(me.Cores())
	}
	c.machines = append(c.machines, machine)
	c.mu.Unlock()
	if c.Net != nil {
		c.Net.Grow(id + 1)
	}
	return id
}

// AddNode grows the cluster by one replica: it allocates the next id, asks
// the primary to admit it as a learner, and boots it. The joiner catches up
// from the chosen log (or a checkpoint transfer) and is promoted to voter
// automatically; use WaitVoter to block until then.
func (c *Cluster) AddNode() (int, error) {
	id := c.addSlot()
	if err := c.onPrimary(func(r *core.Replica) error { return r.AddMember(id, "") }); err != nil {
		return -1, err
	}
	if err := c.startReplica(id); err != nil {
		return -1, err
	}
	return id, nil
}

// RemoveNode commits the removal of replica id. The node stays up serving
// the pre-activation window, then parks itself in RoleRemoved; call Crash
// to reap it once WaitRemoved observes the change.
func (c *Cluster) RemoveNode(id int) error {
	return c.onPrimary(func(r *core.Replica) error { return r.RemoveMember(id) })
}

// ReplaceNode swaps failed (or retiring) replica oldID for a brand-new one
// in a single committed change and boots the replacement; returns the new
// replica's id.
func (c *Cluster) ReplaceNode(oldID int) (int, error) {
	id := c.addSlot()
	if err := c.onPrimary(func(r *core.Replica) error { return r.ReplaceMember(oldID, id, "") }); err != nil {
		return -1, err
	}
	if err := c.startReplica(id); err != nil {
		return -1, err
	}
	return id, nil
}

// WaitMembership polls the primary's committed membership until pred holds.
func (c *Cluster) WaitMembership(timeout time.Duration, pred func(reconfig.Membership) bool) error {
	deadline := c.Env.Now() + timeout
	for c.Env.Now() < deadline {
		if p := c.Primary(); p >= 0 {
			if r := c.Replica(p); r != nil && pred(r.Membership()) {
				return nil
			}
		}
		c.Env.Sleep(5 * time.Millisecond)
	}
	return errors.New("cluster: membership condition not reached in time")
}

// WaitVoter blocks until replica id is a voter in the primary's view.
func (c *Cluster) WaitVoter(id int, timeout time.Duration) error {
	return c.WaitMembership(timeout, func(m reconfig.Membership) bool { return m.IsVoter(id) })
}

// WaitRemoved blocks until replica id has left the primary's membership
// AND the node itself (if still running) has parked in RoleRemoved.
func (c *Cluster) WaitRemoved(id int, timeout time.Duration) error {
	if err := c.WaitMembership(timeout, func(m reconfig.Membership) bool { return !m.IsMember(id) }); err != nil {
		return err
	}
	deadline := c.Env.Now() + timeout
	for c.Env.Now() < deadline {
		r := c.Replica(id)
		if r == nil || r.Role() == core.RoleRemoved {
			return nil
		}
		c.Env.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: replica %d did not go quiet in time", id)
}

// WaitConverged waits until every live replica reports the same stable
// application state (serialized via WriteCheckpoint) and returns it.
func (c *Cluster) WaitConverged(timeout time.Duration) (string, error) {
	deadline := c.Env.Now() + timeout
	var last string
	stable := 0
	for c.Env.Now() < deadline {
		states := make(map[string]bool)
		var s string
		for _, r := range c.live() {
			if r == nil || r.Role() == core.RoleRemoved {
				continue // a removed node's state is frozen where it left off
			}
			if r.Role() == core.RoleFaulted {
				return "", fmt.Errorf("cluster: replica faulted: %w", r.FaultError())
			}
			var buf bytes.Buffer
			if err := r.StateMachineForTest().WriteCheckpoint(&buf); err != nil {
				return "", err
			}
			s = buf.String()
			states[s] = true
		}
		if len(states) == 1 {
			if s == last {
				stable++
				if stable >= 3 {
					return s, nil
				}
			} else {
				stable = 0
				last = s
			}
		} else {
			stable = 0
			last = ""
		}
		c.Env.Sleep(20 * time.Millisecond)
	}
	return "", errors.New("cluster: replicas did not converge in time")
}

// StableStates waits until every live replica's serialized application
// state stops changing and returns the states by replica index. Unlike
// WaitConverged it does not require the states to agree: the chaos
// checker compares them itself, so a divergence becomes a reported
// violation instead of a timeout here. Replicas that crashed on a
// storage fault are returned in faults rather than treated as an error.
func (c *Cluster) StableStates(timeout time.Duration) (states map[int]string, faults map[int]error, err error) {
	deadline := c.Env.Now() + timeout
	var last string
	stable := 0
	for c.Env.Now() < deadline {
		cur := make(map[int]string)
		curFaults := make(map[int]error)
		quiesced := true
		seq := uint64(0)
		haveSeq := false
		for i, r := range c.live() {
			if r == nil || r.Role() == core.RoleRemoved {
				continue // removed nodes froze mid-stream; like a crash
			}
			if r.Role() == core.RoleFaulted {
				curFaults[i] = r.FaultError()
				continue
			}
			// Quiescence means no live replica is still catching up: all
			// share one chosen sequence and have applied everything in it.
			// Without this, a frozen-but-lagging replica (e.g. one still
			// bridging a compaction gap) reads as a stable divergence.
			base, vals := r.ChosenLog()
			s := base + uint64(len(vals))
			if r.Stats().Applied < s {
				quiesced = false
			}
			if haveSeq && s != seq {
				quiesced = false
			}
			seq, haveSeq = s, true
			var buf bytes.Buffer
			if err := r.StateMachineForTest().WriteCheckpoint(&buf); err != nil {
				return nil, nil, err
			}
			cur[i] = buf.String()
		}
		// Compare the whole snapshot (states and fault set) for stability.
		key := fmt.Sprintf("%v|%v", cur, curFaults)
		if quiesced && key == last {
			stable++
			if stable >= 3 {
				return cur, curFaults, nil
			}
		} else {
			stable = 0
			last = key
		}
		c.Env.Sleep(20 * time.Millisecond)
	}
	return nil, nil, errors.New("cluster: replica states did not stabilize in time")
}

// HistoryRecorder observes client operations as a concurrent history for
// the linearizability checker (implemented by check.History).
//
// A recorder may additionally implement Discard(id uint64): when every
// attempt of an operation was answered with a definite did-not-execute
// NACK (shed, deadline-expired), the client discards the op instead of
// recording an unknown outcome, which keeps the checker's search space
// bounded under overload. The method is looked up by type assertion so
// existing implementations keep compiling.
type HistoryRecorder interface {
	// Invoke records an operation's start and returns its id.
	Invoke(client uint64, input []byte) uint64
	// Return records a successful completion with the response bytes.
	Return(id uint64, output []byte)
	// Timeout marks the operation's outcome as unknown: it may or may not
	// take effect at any point after the invocation.
	Timeout(id uint64)
}

// opDiscarder is the optional HistoryRecorder extension (see above).
type opDiscarder interface{ Discard(id uint64) }

// DefaultMaxAttempts bounds one Do/DoTimeout call's redirect-and-retry
// loop. With the backoff schedule below it gives a retry budget of a few
// seconds — plenty for any election — so a request that still cannot land
// (a partitioned majority, a stale map) fails with ErrTooManyAttempts
// instead of spinning until the deadline.
const DefaultMaxAttempts = 256

// retry backoff: exponential from 1ms, jittered in [b/2, b], capped so a
// long outage is probed every ~25ms rather than ever more rarely (see
// internal/retry).
const (
	minRetryBackoff = time.Millisecond
	maxRetryBackoff = 25 * time.Millisecond
)

// Client retry budget: a token bucket refilled by successes. Each retry
// (not first attempts) spends a token; every success earns back
// RetryBudgetRatio. The bucket starts full at RetryBudgetBurst, so
// cold-start elections and short outages ride through; only sustained
// failure — where retries become pure amplification — drains it. With
// ratio 0.5, steady-state retry traffic is capped at 50% of goodput.
const (
	RetryBudgetRatio = 0.5
	RetryBudgetBurst = 64
)

// ErrRetryBudget reports a request abandoned because the client's retry
// budget ran dry: the cluster is failing faster than it is succeeding,
// and more retries would only feed the overload.
var ErrRetryBudget = fmt.Errorf("cluster: %w", retry.ErrBudgetExhausted)

// ErrTooManyAttempts reports a request abandoned after MaxAttempts
// redirects/retries. The outcome is unknown (like a timeout): the request
// may still have been admitted by a primary the client gave up on.
var ErrTooManyAttempts = errors.New("cluster: too many submit attempts")

// ErrPermanent marks failures that no retry against this target can fix
// (the in-process analogue of server.ErrPermanent): a stale sequence
// number, or a target that provably cannot serve the request. The
// redirect/retry loop returns it immediately instead of burning the
// attempt budget, and a rebalance-aware router treats it as "refetch the
// map and reroute" rather than "back off and retry the same group" —
// the permanent/transient split that keeps leader churn (transient,
// retry here) distinct from a stale shard map (permanent here, fixable
// elsewhere).
var ErrPermanent = errors.New("cluster: permanent failure")

// IsPermanent reports whether err can never be fixed by retrying the
// same target (suitable for shard.Router.IsPermanent).
func IsPermanent(err error) bool { return errors.Is(err, ErrPermanent) }

// Client submits requests with retry and primary discovery. `not primary`
// hints are followed with jittered exponential backoff, and each call
// gives up with ErrTooManyAttempts after MaxAttempts tries.
type Client struct {
	C   *Cluster
	ID  uint64
	seq uint64
	// LastPrimary caches the replica to try first.
	LastPrimary int
	// MaxAttempts caps redirects/retries per call; 0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Recorder, when set, observes every Do/DoTimeout call — and every
	// linearizable QueryLevel read — for the consistency checker.
	Recorder HistoryRecorder
	// BudgetExhausted counts calls abandoned on a dry retry budget
	// (the client-side analogue of rex_retry_budget_exhausted_total).
	BudgetExhausted uint64
	// Shed counts attempts NACKed by server-side admission control.
	Shed uint64

	sess   readpath.SessionState
	readRR int
	bo     *retry.Backoff
	budget *retry.Budget
}

// NewClient returns a client with the given unique id.
func (c *Cluster) NewClient(id uint64) *Client {
	return &Client{C: c, ID: id}
}

// backoffState lazily builds the client's shared backoff and retry
// budget. The backoff seed derives from the client id: deterministic
// under the simulator, decorrelated across clients.
func (cl *Client) backoffState() (*retry.Backoff, *retry.Budget) {
	if cl.bo == nil {
		cl.bo = retry.NewBackoff(minRetryBackoff, maxRetryBackoff, int64(cl.ID)*0x9e3779b9+0x7f4a7c15)
		cl.budget = retry.NewBudget(RetryBudgetRatio, RetryBudgetBurst)
	}
	return cl.bo, cl.budget
}

// Do submits one request, retrying across failovers until a response
// arrives, the deadline passes, or the attempt budget runs out.
func (cl *Client) Do(body []byte) ([]byte, error) {
	return cl.doRetry(context.Background(), body, 30*time.Second)
}

// DoCtx is Do honoring ctx: cancellation or a ctx deadline aborts the
// retry loop between attempts (an in-flight Submit still runs to
// completion — the outcome is then recorded as unknown).
func (cl *Client) DoCtx(ctx context.Context, body []byte) ([]byte, error) {
	timeout := 30 * time.Second
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
	}
	return cl.doRetry(ctx, body, timeout)
}

// backoff sleeps one jittered exponential step of the client's shared
// schedule (internal/retry); resetBackoff restarts it after a fresh
// primary hint so redirects are followed promptly.
func (cl *Client) backoff() {
	bo, _ := cl.backoffState()
	cl.C.Env.Sleep(bo.Next())
}

func (cl *Client) resetBackoff() {
	bo, _ := cl.backoffState()
	bo.Reset()
}

// pause sleeps a server-provided retry-after hint, capped so the hint
// shapes the pause but the retry loop keeps owning the overall policy.
func (cl *Client) pause(ra time.Duration) {
	const maxPause = 50 * time.Millisecond
	if ra <= 0 || ra > maxPause {
		ra = maxPause
	}
	cl.C.Env.Sleep(ra)
}

// DoTimeout is Do with an explicit deadline.
func (cl *Client) DoTimeout(body []byte, timeout time.Duration) ([]byte, error) {
	return cl.doRetry(context.Background(), body, timeout)
}

func (cl *Client) doRetry(ctx context.Context, body []byte, timeout time.Duration) ([]byte, error) {
	cl.seq++
	seq := cl.seq
	e := cl.C.Env
	var opID uint64
	if cl.Recorder != nil {
		opID = cl.Recorder.Invoke(cl.ID, body)
	}
	maxAttempts := cl.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	deadline := e.Now() + timeout
	target := cl.LastPrimary
	_, budget := cl.backoffState()
	cl.resetBackoff()
	// sawUnknown tracks whether any attempt's outcome is in doubt. While
	// false, every attempt was answered with a definite did-not-execute
	// NACK, so on final failure the op can be discarded from the history
	// instead of haunting the checker as maybe-executes-anytime.
	sawUnknown := false
	// chargeRetry marks the next attempt as budget-consuming: retries
	// after a shed re-offer load a server just refused for lack of
	// capacity, so they spend tokens. Everything else — a down replica,
	// a not-primary redirect, a crashed-mid-request ErrStopped — is
	// fault churn, not overload, and stays free: it is already bounded
	// by the op deadline, and charging it would make an ordinary
	// election or restart storm drain the budget and abort ops the
	// client could have ridden through.
	chargeRetry := false
	fail := func() {
		if cl.Recorder == nil {
			return
		}
		if !sawUnknown {
			if d, ok := cl.Recorder.(opDiscarder); ok {
				d.Discard(opID)
				return
			}
		}
		cl.Recorder.Timeout(opID)
	}
	for attempts := 0; e.Now() < deadline; attempts++ {
		if err := ctx.Err(); err != nil {
			// Canceled between attempts: an earlier attempt may still land,
			// so the outcome is unknown.
			fail()
			return nil, err
		}
		if attempts >= maxAttempts {
			fail()
			return nil, fmt.Errorf("%w: gave up after %d attempts", ErrTooManyAttempts, attempts)
		}
		if chargeRetry && !budget.Allow() {
			// The cluster is failing faster than it is succeeding; more
			// retries from this client would only amplify the overload.
			cl.BudgetExhausted++
			fail()
			return nil, fmt.Errorf("%w: after %d attempts", ErrRetryBudget, attempts)
		}
		chargeRetry = false
		n := cl.C.Size()
		r := cl.C.Replica(target % n)
		if r == nil {
			target++
			cl.backoff()
			continue
		}
		resp, tok, err := r.SubmitTokenDeadline(cl.ID, seq, body, deadline-e.Now())
		if err == nil {
			budget.Success()
			cl.LastPrimary = target % n
			cl.sess.Observe(tok)
			if cl.Recorder != nil {
				cl.Recorder.Return(opID, resp)
			}
			return resp, nil
		}
		switch {
		case errors.Is(err, core.ErrStaleSeq):
			// Permanent: no primary will ever accept this sequence number
			// again, so retrying elsewhere only burns the attempt budget.
			// An earlier admitted attempt is exactly what moved the dedup
			// table, so the outcome is unknown.
			sawUnknown = true
			fail()
			return nil, fmt.Errorf("%w: %w", ErrPermanent, err)
		case errors.Is(err, overload.ErrDeadlineExceeded):
			// The propagated deadline ran out before admission: provably
			// never executed, and no retry can beat a deadline that has
			// already passed.
			fail()
			return nil, err
		case errors.Is(err, overload.ErrOverloaded):
			// Shed before admission: provably never executed. Honor the
			// retry-after hint against the same target — overload is not
			// a routing problem — and make the retry spend budget: it is
			// load offered to a server that just said it has none to spare.
			cl.Shed++
			chargeRetry = true
			cl.pause(overload.RetryAfter(err))
			continue
		}
		var np core.ErrNotPrimary
		switch {
		case errors.As(err, &np):
			// Not-primary is a definite no-execute NACK, hint or not.
			if np.Leader >= 0 {
				target = np.Leader
				// A fresh hint is authoritative; restart the backoff so
				// the redirect is followed promptly.
				cl.resetBackoff()
			} else {
				target++
			}
		default:
			// ErrStopped and anything unclassified: the submit may have
			// been admitted before the failure, so the outcome is unknown.
			sawUnknown = true
			target++
		}
		cl.backoff()
	}
	fail()
	return nil, fmt.Errorf("cluster: request timed out after %v", timeout)
}

// Query runs a read-only query, preferring replica i but failing over to
// the other replicas on ErrStopped or a missing replica — the same
// transient classification Do gives writes.
func (cl *Client) Query(i int, q []byte) ([]byte, error) {
	n := cl.C.Size()
	cl.resetBackoff()
	var lastErr error = errors.New("cluster: replica down")
	for attempt := 0; attempt < 2*n; attempt++ {
		r := cl.C.Replica((i + attempt) % n)
		if r == nil {
			lastErr = errors.New("cluster: replica down")
			cl.backoff()
			continue
		}
		resp, err := r.Query(q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, core.ErrStopped) {
			return nil, err
		}
		cl.backoff()
	}
	return nil, lastErr
}

// QueryLevel runs a read at the given consistency level, with the same
// retry/redirect classification Do gives writes. Linearizable reads chase
// the primary (and are recorded into the client's history, when a
// Recorder is set, exactly like writes — they claim a linearization
// point, so the checker must hold them to it). Session and eventual reads
// rotate over the likely secondaries, falling back to the primary when
// the query is classified primary-only; session reads carry and refresh
// the client's session token.
func (cl *Client) QueryLevel(level readpath.Level, q []byte) ([]byte, error) {
	return cl.QueryLevelTimeout(level, q, 30*time.Second)
}

// QueryLevelTimeout is QueryLevel with an explicit deadline.
func (cl *Client) QueryLevelTimeout(level readpath.Level, q []byte, timeout time.Duration) ([]byte, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("cluster: invalid consistency level %d", uint8(level))
	}
	e := cl.C.Env
	lin := level == readpath.Linearizable
	var opID uint64
	if lin && cl.Recorder != nil {
		opID = cl.Recorder.Invoke(cl.ID, q)
	}
	maxAttempts := cl.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	deadline := e.Now() + timeout
	toPrimary := lin
	cl.resetBackoff()
	var lastErr error
	// A failed read is always discardable: reads mutate nothing and the
	// caller never saw a response, so dropping the op cannot invalidate
	// any other op's linearization.
	failRead := func() {
		if !lin || cl.Recorder == nil {
			return
		}
		if d, ok := cl.Recorder.(opDiscarder); ok {
			d.Discard(opID)
			return
		}
		cl.Recorder.Timeout(opID)
	}
	for attempts := 0; e.Now() < deadline && attempts < maxAttempts; attempts++ {
		n := cl.C.Size()
		var i int
		if toPrimary {
			i = cl.LastPrimary % n
		} else {
			cl.readRR++
			i = (cl.LastPrimary + 1 + cl.readRR) % n
		}
		r := cl.C.Replica(i)
		if r == nil {
			cl.backoff()
			continue
		}
		var tok readpath.Token
		if level == readpath.Session {
			tok = cl.sess.Token()
		}
		resp, newTok, err := r.QueryLevel(level, tok, q)
		if err == nil {
			cl.sess.Observe(newTok)
			if lin {
				cl.LastPrimary = i
				if cl.Recorder != nil {
					cl.Recorder.Return(opID, resp)
				}
			}
			return resp, nil
		}
		lastErr = err
		var np core.ErrNotPrimary
		switch {
		case errors.As(err, &np):
			if np.Leader >= 0 {
				cl.LastPrimary = np.Leader
				cl.resetBackoff()
			} else {
				cl.LastPrimary = (cl.LastPrimary + 1) % n
			}
			toPrimary = true
		case errors.Is(err, readpath.ErrPrimaryOnly):
			// Classified primary-only: stop probing secondaries. The
			// primary serves any level.
			toPrimary = true
		case errors.Is(err, overload.ErrOverloaded):
			// Shed by admission control: honor the retry-after hint. A
			// weak read may still find capacity on another secondary, so
			// keep rotating.
			cl.Shed++
			cl.pause(overload.RetryAfter(err))
			continue
		case errors.Is(err, core.ErrStopped),
			errors.Is(err, readpath.ErrFrontierWait),
			errors.Is(err, readpath.ErrLeaseWait):
			// Transient: another replica (or the next election's winner)
			// can serve it.
		default:
			failRead()
			return nil, err
		}
		cl.backoff()
	}
	failRead()
	if lastErr == nil {
		lastErr = errors.New("cluster: no replica served the read")
	}
	return nil, fmt.Errorf("cluster: read failed after retries: %w", lastErr)
}
