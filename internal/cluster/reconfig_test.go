package cluster_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/sim"
)

// TestReplacementDrill is the end-to-end node-replacement exercise: a
// 3-node cluster under client load loses a secondary, the operator swaps
// it for a fresh machine with ReplaceNode, the joiner catches up and is
// promoted — and then the old primary dies too, so the replacement must
// carry its weight in the next election (with the old primary gone, every
// quorum includes it). Afterwards all live replicas agree.
func TestReplacementDrill(t *testing.T) {
	e := sim.New(4)
	var failure string
	var failMu sync.Mutex
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
	}
	e.Run(func() {
		c := cluster.New(e, newLedger(), cluster.Options{
			Replicas:        3,
			Workers:         2,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			Seed:            31,
		})
		if err := c.Start(); err != nil {
			fail("start: %v", err)
			return
		}
		p0, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			fail("%v", err)
			return
		}

		var done, sent atomic.Int64
		load := env.GoEach(e, "drill-client", 2, func(ci int) {
			cl := c.NewClient(uint64(70 + ci))
			for k := 0; done.Load() == 0; k++ {
				if _, err := cl.DoTimeout([]byte(fmt.Sprintf("c%d-n%d", ci, k)), 15*time.Second); err != nil {
					fail("client %d op %d: %v", ci, k, err)
					return
				}
				sent.Add(1)
				e.Sleep(3 * time.Millisecond)
			}
		})

		e.Sleep(200 * time.Millisecond)

		// A secondary dies; replace it with a fresh machine.
		sec := -1
		for i := 0; i < 3; i++ {
			if i != p0 {
				sec = i
				break
			}
		}
		c.Crash(sec)
		repl, err := c.ReplaceNode(sec)
		if err != nil {
			fail("replace %d: %v", sec, err)
			done.Store(1)
			load.Wait()
			return
		}
		if err := c.WaitVoter(repl, 30*time.Second); err != nil {
			fail("replacement %d not promoted: %v", repl, err)
			done.Store(1)
			load.Wait()
			return
		}
		if err := c.WaitRemoved(sec, 30*time.Second); err != nil {
			fail("old identity %d not removed: %v", sec, err)
			done.Store(1)
			load.Wait()
			return
		}

		// Now the primary dies. The survivors are one original voter and
		// the replacement: a quorum of the new membership exists only if
		// the replacement votes, so a successful election proves it does.
		e.Sleep(100 * time.Millisecond)
		c.Crash(p0)
		np, err := c.WaitPrimary(10 * time.Second)
		if err != nil {
			fail("no primary after crashing %d: %v", p0, err)
			done.Store(1)
			load.Wait()
			return
		}
		if np == p0 || np == sec {
			fail("dead replica %d elected primary", np)
		}
		e.Sleep(200 * time.Millisecond)

		// Bring the old primary back (it is still a member) and let the
		// cluster settle with all three members live.
		if err := c.Restart(p0); err != nil {
			fail("restart %d: %v", p0, err)
		}
		e.Sleep(200 * time.Millisecond)
		done.Store(1)
		load.Wait()
		failMu.Lock()
		failed := failure != ""
		failMu.Unlock()
		if failed {
			return
		}
		if sent.Load() == 0 {
			fail("no operations completed")
			return
		}

		states, faults, err := c.StableStates(30 * time.Second)
		if err != nil {
			fail("%v", err)
			return
		}
		for i, ferr := range faults {
			fail("replica %d faulted: %v", i, ferr)
			return
		}
		if len(states) != 3 {
			fail("%d live replicas after the drill, want 3", len(states))
			return
		}
		if _, ok := states[sec]; ok {
			fail("removed replica %d still reporting state", sec)
			return
		}
		if v := check.StateAgreement(states); len(v) != 0 {
			fail("%s", v[0])
			return
		}
		var logs []check.ChosenLog
		for i := 0; i < c.Size(); i++ {
			r := c.Replica(i)
			if r == nil || r.Role() == core.RoleRemoved {
				continue
			}
			base, vals := r.ChosenLog()
			logs = append(logs, check.ChosenLog{Replica: i, Base: base, Vals: vals})
		}
		if v := check.CheckPrefix(logs); len(v) != 0 {
			fail("%s", v[0])
			return
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}

// TestSelfRemovalRedirects pins the error contract for removing a node by
// asking that same node: a secondary must answer ErrNotPrimary (so clients
// redirect to the primary, where the removal is perfectly valid) — the
// "cannot remove self" guard belongs to the primary alone.
func TestSelfRemovalRedirects(t *testing.T) {
	e := sim.New(4)
	var failure string
	e.Run(func() {
		c := cluster.New(e, newLedger(), cluster.Options{
			Replicas:        3,
			Workers:         2,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			Seed:            33,
		})
		if err := c.Start(); err != nil {
			failure = fmt.Sprintf("start: %v", err)
			return
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			failure = err.Error()
			return
		}
		sec := (p + 1) % 3

		// A secondary asked to remove itself redirects instead of refusing.
		err = c.Replica(sec).RemoveMember(sec)
		var np core.ErrNotPrimary
		if !errors.As(err, &np) {
			failure = fmt.Sprintf("secondary self-removal: got %v, want ErrNotPrimary", err)
			return
		}
		err = c.Replica(sec).ReplaceMember(sec, 3, "n3")
		if !errors.As(err, &np) {
			failure = fmt.Sprintf("secondary self-replacement: got %v, want ErrNotPrimary", err)
			return
		}

		// The primary asked to remove itself is the real guard.
		err = c.Replica(p).RemoveMember(p)
		if err == nil || !strings.Contains(err.Error(), "cannot remove self") {
			failure = fmt.Sprintf("primary self-removal: got %v, want cannot-remove-self", err)
			return
		}

		// And the valid form still works: the primary removes the secondary.
		if err := c.Replica(p).RemoveMember(sec); err != nil {
			failure = fmt.Sprintf("primary removing %d: %v", sec, err)
			return
		}
		if err := c.WaitRemoved(sec, 30*time.Second); err != nil {
			failure = fmt.Sprintf("secondary %d not removed: %v", sec, err)
			return
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}

// TestRemovedIdentityRefused restarts a replaced node from its stale WAL:
// the old identity still believes it is a voter, but the cluster must
// refuse it — epoch nacks teach it the membership that replaced it, it
// parks in RoleRemoved, and service continues without it.
func TestRemovedIdentityRefused(t *testing.T) {
	e := sim.New(4)
	var failure string
	e.Run(func() {
		c := cluster.New(e, newLedger(), cluster.Options{
			Replicas:        3,
			Workers:         2,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			Seed:            32,
		})
		if err := c.Start(); err != nil {
			failure = fmt.Sprintf("start: %v", err)
			return
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			failure = err.Error()
			return
		}
		cl := c.NewClient(80)
		for k := 0; k < 20; k++ {
			if _, err := cl.DoTimeout([]byte(fmt.Sprintf("pre-%d", k)), 10*time.Second); err != nil {
				failure = fmt.Sprintf("op %d: %v", k, err)
				return
			}
		}

		sec := -1
		for i := 0; i < 3; i++ {
			if i != p {
				sec = i
				break
			}
		}
		c.Crash(sec)
		repl, err := c.ReplaceNode(sec)
		if err != nil {
			failure = fmt.Sprintf("replace %d: %v", sec, err)
			return
		}
		if err := c.WaitVoter(repl, 30*time.Second); err != nil {
			failure = fmt.Sprintf("replacement %d not promoted: %v", repl, err)
			return
		}
		if err := c.WaitRemoved(sec, 30*time.Second); err != nil {
			failure = fmt.Sprintf("old identity %d not removed: %v", sec, err)
			return
		}

		// The decommissioned machine comes back with its old disk. Its WAL
		// predates the replacement, so it rejoins as a voter of a dead
		// epoch — and must be refused and told why.
		if err := c.Restart(sec); err != nil {
			failure = fmt.Sprintf("restart %d: %v", sec, err)
			return
		}
		deadline := e.Now() + 30*time.Second
		for e.Now() < deadline {
			if r := c.Replica(sec); r != nil && r.Role() == core.RoleRemoved {
				break
			}
			e.Sleep(10 * time.Millisecond)
		}
		r := c.Replica(sec)
		if r == nil || r.Role() != core.RoleRemoved {
			failure = fmt.Sprintf("restarted old identity %d was not refused", sec)
			return
		}

		// Service must be unaffected: writes still commit and the refused
		// node never leads.
		for k := 0; k < 10; k++ {
			if _, err := cl.DoTimeout([]byte(fmt.Sprintf("post-%d", k)), 10*time.Second); err != nil {
				failure = fmt.Sprintf("post-refusal op %d: %v", k, err)
				return
			}
		}
		if c.Primary() == sec {
			failure = fmt.Sprintf("removed replica %d is primary", sec)
			return
		}
		if _, err := c.WaitConverged(30 * time.Second); err != nil {
			failure = err.Error()
			return
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}
