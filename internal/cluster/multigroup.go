package cluster

import (
	"errors"
	"fmt"
	"time"

	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/readpath"
	"rex/internal/rebalance"
	"rex/internal/shard"
	"rex/internal/storage"
	"rex/internal/transport"
)

// MultiCluster runs a sharded in-process deployment: one node-level
// network over the shard map's nodes, a shard.NodeMux per node, and one
// Cluster per replica group attached through the muxes. Groups colocated
// on a node share that node's simulated machine (its CPU cores), exactly
// like colocated replica processes share a server.
type MultiCluster struct {
	Env    env.Env
	Map    *shard.ShardMap
	Net    *transport.Network // node-level fabric, indexed by node id
	Muxes  []*shard.NodeMux   // one per node
	Groups []*Cluster         // one per group
	// Live is set when the deployment was built with
	// Options.LiveRebalance: routers speak the rebalance envelope and the
	// authoritative map lives in group 0's replicated state (Map is only
	// the bootstrap version).
	Live bool
}

// MultiStoreIndex flattens (group, replica) into the index passed to
// Options.NewLog / Options.NewSnapshots by NewMulti, so custom stores for
// different groups never collide.
func MultiStoreIndex(group, replica int) int { return group*256 + replica }

// NewMulti builds (but does not start) a multi-group cluster over m.
// opts applies per group; Replicas is taken from the map, Seed is
// decorrelated per group, and NewLog/NewSnapshots are called with
// MultiStoreIndex(group, replica). Replica 0 of each group — the map's
// preferred primary — gets a shortened election timeout so primaries land
// where the placement rotation put them.
func NewMulti(e env.Env, factory core.Factory, m *shard.ShardMap, opts Options) (*MultiCluster, error) {
	if opts.LiveRebalance {
		m.EnsureRanges()
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	mc := &MultiCluster{
		Env:  e,
		Map:  m,
		Net:  transport.NewNetwork(e, m.Nodes, opts.NetDelay, opts.Seed),
		Live: opts.LiveRebalance,
	}
	nodeMachines := make([]int, m.Nodes)
	for n := range nodeMachines {
		nodeMachines[n] = -1
	}
	if me, ok := e.(machineEnv); ok {
		for n := range nodeMachines {
			nodeMachines[n] = me.AddMachine(me.Cores())
		}
	}
	for n := 0; n < m.Nodes; n++ {
		mc.Muxes = append(mc.Muxes, shard.NewNodeMux(e, mc.Net.Endpoint(n), m, n))
	}
	baseET := opts.ElectionTimeout
	if baseET <= 0 {
		baseET = 150 * time.Millisecond // core's default
	}
	for g := 0; g < m.Groups(); g++ {
		g := g
		og := opts
		og.Replicas = m.Replicas(g)
		og.Seed = opts.Seed + int64(g)*1009
		og.Endpoints = func(i int) transport.Endpoint {
			return mc.Muxes[m.Placement[g][i]].Endpoint(g)
		}
		og.Machines = make([]int, og.Replicas)
		for i := range og.Machines {
			og.Machines[i] = nodeMachines[m.Placement[g][i]]
		}
		// Paxos picks base + rand(0..base); halving replica 0's base puts
		// its whole range below the others', so absent faults each group
		// elects the map's preferred primary.
		og.ElectionTimeoutOf = func(i int) time.Duration {
			if i == 0 {
				return baseET / 2
			}
			return baseET
		}
		baseLog, baseSnaps := opts.NewLog, opts.NewSnapshots
		og.NewLog = func(i int) storage.Log { return baseLog(MultiStoreIndex(g, i)) }
		og.NewSnapshots = func(i int) storage.SnapshotStore { return baseSnaps(MultiStoreIndex(g, i)) }
		fg := factory
		if opts.LiveRebalance {
			fg = rebalance.WrapFactory(factory, m, g, g == 0)
		}
		mc.Groups = append(mc.Groups, New(e, fg, og))
	}
	return mc, nil
}

// Start brings every group up.
func (mc *MultiCluster) Start() error {
	for g, c := range mc.Groups {
		if err := c.Start(); err != nil {
			return fmt.Errorf("cluster: start group %d: %w", g, err)
		}
	}
	return nil
}

// Stop shuts every group down, then the node muxes.
func (mc *MultiCluster) Stop() {
	for _, c := range mc.Groups {
		c.Stop()
	}
	for _, nm := range mc.Muxes {
		nm.Close()
	}
}

// Primary returns group g's current primary index within the group, or -1.
func (mc *MultiCluster) Primary(g int) int { return mc.Groups[g].Primary() }

// WaitAllPrimaries polls until every group has a primary, under one
// shared deadline.
func (mc *MultiCluster) WaitAllPrimaries(timeout time.Duration) error {
	deadline := mc.Env.Now() + timeout
	for g, c := range mc.Groups {
		for c.Primary() < 0 {
			if mc.Env.Now() >= deadline {
				return fmt.Errorf("cluster: group %d has no primary in time", g)
			}
			mc.Env.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// CrashGroupPrimary crashes group g's current primary and returns its
// in-group index. Other groups — including ones hosting replicas on the
// same node — keep running: only the one replica stops, not the node.
func (mc *MultiCluster) CrashGroupPrimary(g int) (int, error) {
	p := mc.Groups[g].Primary()
	if p < 0 {
		return -1, errors.New("cluster: group has no primary to crash")
	}
	mc.Groups[g].Crash(p)
	return p, nil
}

// NewRouter returns a keyed router backed by one fresh client per group.
// Client ids are idBase+group (plus idBase+groups for the map-fetch
// client under LiveRebalance); callers running several routers (or extra
// per-group clients) must space their id ranges so ids stay unique
// within each group.
//
// Under LiveRebalance the router speaks the rebalance envelope: it
// carries each request's range epoch, follows wrong-group/stale NACKs by
// refetching the authoritative map from group 0 with jittered backoff,
// and treats cluster.ErrPermanent as "reroute", transient errors as the
// caller's problem.
func (mc *MultiCluster) NewRouter(idBase uint64) *shard.Router {
	clients := make([]shard.GroupClient, mc.Map.Groups())
	for g := range clients {
		clients[g] = mc.Groups[g].NewClient(idBase + uint64(g))
	}
	r, err := shard.NewRouter(mc.Map, clients)
	if err != nil {
		panic(err) // impossible: one client per map group by construction
	}
	if mc.Live {
		r.Map = mc.Map.Clone() // refetch must not swap the map under other routers
		r.Enveloped = true
		r.IsPermanent = IsPermanent
		r.Sleep = mc.Env.Sleep
		r.Now = mc.Env.Now
		r.ClientID = idBase
		fetch := mc.Groups[0].NewClient(idBase + uint64(mc.Map.Groups()))
		r.Fetch = func() (*shard.ShardMap, error) { return FetchLiveMap(fetch) }
	}
	return r
}

// FetchLiveMap reads the authoritative shard map from the map home group
// through the given client (a linearizable control query).
func FetchLiveMap(home *Client) (*shard.ShardMap, error) {
	resp, err := home.QueryLevel(readpath.Linearizable, rebalance.GetMapQuery())
	if err != nil {
		return nil, err
	}
	st, payload, err := shard.DecodeReply(resp)
	if err != nil {
		return nil, err
	}
	if st != shard.ReplyOK {
		return nil, fmt.Errorf("cluster: map fetch nacked (%d)", st)
	}
	m, _, err := rebalance.DecodeGetMapReply(payload)
	return m, err
}

// NewCoordinator returns a rebalance coordinator over fresh per-group
// clients (ids idBase+group — space id ranges as for NewRouter). Only
// valid under LiveRebalance.
func (mc *MultiCluster) NewCoordinator(idBase uint64, reg *obs.Registry) *rebalance.Coordinator {
	clients := make([]shard.GroupClient, mc.Map.Groups())
	for g := range clients {
		clients[g] = mc.Groups[g].NewClient(idBase + uint64(g))
	}
	return &rebalance.Coordinator{Groups: clients, Home: 0, Clock: mc.Env, Metrics: reg}
}
