package rexsync

import (
	"rex/internal/env"
	"rex/internal/sched"
	"rex/internal/trace"
)

// Cond is Rex's condition variable (the paper's RexCond), bound to a Lock.
// Recording captures which signal/broadcast enabled each wakeup so that
// secondaries wake waiters in the same order.
type Cond struct {
	rt   *sched.Runtime
	id   uint32
	name string
	lock *Lock
	real env.Cond

	// meta guards signal bookkeeping. Unlike the lock's bookkeeping it has
	// its own mutex so Signal/Broadcast are safe (if unusual) even when the
	// caller does not hold the associated lock.
	meta  env.Mutex
	epoch uint64
	ver   *uint64
	// lastSignal is the most recent signal/broadcast event; a waiter that
	// wakes records an edge from it. Reading it after reacquiring the lock
	// is sound: the signal event was recorded before the real signal, so
	// the edge always points to an already-committed event.
	lastSignal trace.EventID
}

// NewCond creates a condition variable bound to lock. The lock must not be
// conflict-class-owned: a Cond's wait/wake events hang off the lock's
// recorded acquire/release chain, which elision removes.
func NewCond(rt *sched.Runtime, name string, lock *Lock) *Cond {
	if lock.Class() != 0 {
		panic("rexsync: Cond " + name + " bound to conflict-class lock " + lock.name)
	}
	id := rt.RegisterResource(name)
	return &Cond{
		rt:   rt,
		id:   id,
		name: name,
		ver:  rt.Version(id),
		lock: lock,
		real: rt.Env.NewCond(lock.Real()),
		meta: rt.Env.NewMutex(),
	}
}

func (c *Cond) refreshLocked() {
	if e := c.rt.Epoch(); c.epoch != e {
		c.epoch = e
	}
}

// Wait atomically releases the associated lock, blocks until woken by
// Signal/Broadcast, and reacquires the lock. The caller must hold the lock.
//
// In the trace, Wait is two events on the lock's causal chain: a
// cond-wait-begin that acts as the lock release, and a cond-wake that acts
// as the lock reacquisition and carries an edge from the enabling signal.
func (c *Cond) Wait(w *sched.Worker) {
	for {
		switch w.Mode() {
		case sched.ModeNative:
			c.real.Wait()
			return
		case sched.ModeRecord:
			c.waitRecordRelease(w)
			// Block on the real condition variable (releases and
			// reacquires the real lock).
			c.real.Wait()
			c.waitRecordWake(w)
			return
		default:
			switch c.waitReplay(w) {
			case waitDone:
				return
			case waitAbortFresh:
				// Nothing replayed yet: redo the whole Wait.
				redoAfterAbort(w)
			case waitAbortParked:
				// The committed trace ends with this thread parked on the
				// condition variable: the wait-begin was replayed (lock
				// released) but no wake was recorded. After promotion,
				// park on the real condition variable and record only the
				// wake half on a live wakeup (§4 mode change).
				redoAfterAbort(w)
				c.lock.real.Lock()
				c.real.Wait()
				c.waitRecordWake(w)
				return
			}
		}
	}
}

// waitRecordRelease records the release half of Wait: it behaves exactly
// like Unlock on the lock's causal chain. The caller must hold the lock.
func (c *Cond) waitRecordRelease(w *sched.Worker) {
	l := c.lock
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	var in []trace.EventID
	for _, tf := range l.tryFails {
		if !w.PruneEdge(tf) {
			in = append(in, tf)
		}
	}
	l.tryFails = l.tryFails[:0]
	relID := w.Record(trace.Event{Kind: trace.KindCondWaitBegin, Res: l.id, Arg: *l.ver}, in)
	l.lastRel = relID
	l.relVC = w.VC().Clone()
	l.holderAcq = trace.EventID{}
	l.meta.Unlock()
}

// waitRecordWake records the wake half of Wait: a lock acquire plus an
// edge from the signal that (causally) enabled it. The caller holds the
// real lock again (real.Wait reacquired it).
func (c *Cond) waitRecordWake(w *sched.Worker) {
	l := c.lock
	c.meta.Lock()
	sig := c.lastSignal
	c.meta.Unlock()
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	var in []trace.EventID
	if !w.PruneEdge(l.lastRel) {
		in = append(in, l.lastRel)
	}
	w.JoinVC(l.relVC)
	if sig != (trace.EventID{}) && !w.PruneEdge(sig) {
		in = append(in, sig)
	}
	wakeID := w.Record(trace.Event{Kind: trace.KindCondWake, Res: l.id, Arg: *l.ver}, in)
	l.holderAcq = wakeID
	l.meta.Unlock()
}

// waitOutcome describes how far waitReplay got before an abort.
type waitOutcome int

const (
	waitDone        waitOutcome = iota // both halves replayed
	waitAbortFresh                     // aborted before any effect
	waitAbortParked                    // wait-begin replayed, wake missing
)

// waitReplay replays the two halves of Wait.
func (c *Cond) waitReplay(w *sched.Worker) waitOutcome {
	l := c.lock
	ev, id, ok := expectEvent(w, trace.KindCondWaitBegin, l.id, c.name)
	if !ok {
		return waitAbortFresh
	}
	if !waitSources(w, id) {
		return waitAbortFresh
	}
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	checkVersion(w, ev, id, *l.ver, l.name)
	l.lastRel = id
	l.holderAcq = trace.EventID{}
	l.tryFails = l.tryFails[:0]
	l.meta.Unlock()
	// Release the real lock; replay does not block on the real condition
	// variable — the recorded wake edge is the wakeup.
	l.real.Unlock()
	rep := w.Runtime().Replayer()
	rep.Commit(w.ID())

	ev2, id2, ok := expectEvent(w, trace.KindCondWake, l.id, c.name)
	if !ok {
		return waitAbortParked
	}
	if !waitSources(w, id2) {
		return waitAbortParked
	}
	l.real.Lock()
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	checkVersion(w, ev2, id2, *l.ver, l.name)
	l.holderAcq = id2
	l.meta.Unlock()
	rep.Commit(w.ID())
	return waitDone
}

// Signal wakes one waiter.
func (c *Cond) Signal(w *sched.Worker) {
	c.signalOrBroadcast(w, trace.KindCondSignal)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(w *sched.Worker) {
	c.signalOrBroadcast(w, trace.KindCondBroadcast)
}

func (c *Cond) signalOrBroadcast(w *sched.Worker, kind trace.Kind) {
	for {
		switch w.Mode() {
		case sched.ModeNative:
			if kind == trace.KindCondSignal {
				c.real.Signal()
			} else {
				c.real.Broadcast()
			}
			return
		case sched.ModeRecord:
			// Record the event before performing the real signal so the
			// woken waiter observes an already-committed signal event.
			c.meta.Lock()
			c.refreshLocked()
			*c.ver++
			c.lastSignal = w.Record(trace.Event{Kind: kind, Res: c.id, Arg: *c.ver}, nil)
			c.meta.Unlock()
			if kind == trace.KindCondSignal {
				c.real.Signal()
			} else {
				c.real.Broadcast()
			}
			return
		default:
			ev, id, ok := expectEvent(w, kind, c.id, c.name)
			if !ok {
				redoAfterAbort(w)
				continue
			}
			if !waitSources(w, id) {
				redoAfterAbort(w)
				continue
			}
			c.meta.Lock()
			c.refreshLocked()
			*c.ver++
			checkVersion(w, ev, id, *c.ver, c.name)
			c.lastSignal = id
			c.meta.Unlock()
			// No real signal: replayed waiters are woken by their recorded
			// wake edges, and native-mode readers never Wait. The real
			// condition variable is only used in record/native modes.
			w.Runtime().Replayer().Commit(w.ID())
			return
		}
	}
}
