package rexsync

import (
	"testing"
	"time"

	"rex/internal/env"
	"rex/internal/sched"
	"rex/internal/sim"
	"rex/internal/trace"
)

// TestUnguardedRaceCausesDivergence demonstrates §5.1 deterministically: a
// worker branches on an UNGUARDED shared flag (a data race Rex cannot
// capture). Record and replay run under different schedules (compute time
// is not traced — on a real secondary the schedule always differs), the
// racy read resolves differently, the worker takes a different lock than
// recorded, and the wrapper reports a DivergenceError naming the resource.
func TestUnguardedRaceCausesDivergence(t *testing.T) {
	type world struct {
		flag  int // UNGUARDED — the bug under test
		lockA *Lock
		lockB *Lock
	}
	// reader's compute before the racy read: short at record (reads flag
	// before the writer sets it), long at replay (reads it after).
	run := func(readerDelay time.Duration, tr *trace.Trace) (*trace.Trace, *sched.DivergenceError) {
		var out *trace.Trace
		var div *sched.DivergenceError
		e := sim.New(2)
		e.Run(func() {
			rt := sched.NewRuntime(e, 2, sched.ModeNative)
			wl := &world{}
			wl.lockA = NewLock(rt, "guarded-by-A")
			wl.lockB = NewLock(rt, "guarded-by-B")
			if tr == nil {
				rt.StartRecord(nil, 0)
			} else {
				rt.StartReplay(tr, nil)
			}
			g := env.NewGroup(e)
			g.Add(2)
			e.Go("writer", func() {
				defer g.Done()
				defer swallowStopped()
				w := rt.Worker(0)
				e.Compute(100 * time.Microsecond)
				wl.flag = 1 // racy write
				wl.lockA.Lock(w)
				wl.lockA.Unlock(w)
			})
			e.Go("reader", func() {
				defer g.Done()
				defer func() {
					if r := recover(); r != nil {
						if d, ok := r.(*sched.DivergenceError); ok {
							div = d
							if rep := rt.Replayer(); rep != nil {
								rep.Abort()
							}
							return
						}
						if _, ok := r.(Stopped); ok {
							return
						}
						panic(r)
					}
				}()
				w := rt.Worker(1)
				e.Compute(readerDelay)
				if wl.flag == 0 { // racy read steering control flow
					wl.lockA.Lock(w)
					wl.lockA.Unlock(w)
				} else {
					wl.lockB.Lock(w)
					wl.lockB.Unlock(w)
				}
			})
			g.Wait()
			if tr == nil {
				out = trace.New(2)
				if err := out.Apply(rt.Recorder().Collect()); err != nil {
					t.Error(err)
				}
			}
		})
		return out, div
	}

	// Record with a fast reader: it sees flag==0 and takes lock A.
	tr, _ := run(10*time.Microsecond, nil)
	sawA := false
	for _, ev := range tr.Threads[1].Events {
		if ev.Kind == trace.KindLockAcq && ev.Res == 1 {
			sawA = true
		}
	}
	if !sawA {
		t.Fatal("scenario broken: reader did not take lock A during record")
	}
	// Replay with a slow reader: it sees flag==1 and tries lock B — a
	// divergence from the recorded trace.
	_, div := run(500*time.Microsecond, tr)
	if div == nil {
		t.Fatal("unguarded race did not produce a divergence")
	}
	// The report names the resource whose wrapper caught the mismatch (the
	// one the diverging thread actually touched) and carries the expected
	// event — together they point the developer at both locks (§6.1).
	if div.Resource != "guarded-by-B" {
		t.Errorf("divergence names %q, want the attempted resource", div.Resource)
	}
	if div.Expected.Kind != trace.KindLockAcq || div.Expected.Res != 1 {
		t.Errorf("expected-event in report = %+v, want the recorded lock-A acquire", div.Expected)
	}
}

func swallowStopped() {
	if r := recover(); r != nil {
		if _, ok := r.(Stopped); ok {
			return
		}
		panic(r)
	}
}
