// Package rexsync provides Rex's replicated synchronization primitives:
// Lock (with TryLock), RWLock, Cond, and Semaphore, plus recording of
// nondeterministic values (Fig. 3, §4).
//
// Each primitive wraps a real lock and switches behaviour on the worker's
// execution mode:
//
//   - native: plain locking, nothing recorded (standalone execution,
//     read-only pools, NativeExec scopes);
//   - record: perform the real operation, then log an event and the causal
//     edges that order it after other threads' events, pruning edges that
//     are implied by already-recorded ones (vector clocks, §4.2);
//   - replay: wait until the trace's next event for this thread matches the
//     operation and all its causal sources have executed, then perform the
//     real operation (order replay, §4.2 — resources are never faked, so a
//     secondary can switch to live execution at promotion).
//
// Two invariants keep traces replayable and checks sound:
//
//  1. Every recorded edge points from an event already appended to its
//     thread's log, so the trace is acyclic and commit order is a valid
//     replay order.
//  2. Resource versions are bumped only by operations that are totally
//     ordered per resource by recorded edges (acquire/release, writer
//     lock/unlock, semaphore ops, signals). Unordered-but-commutative
//     events (failed TryLocks, concurrent reader acquisitions) record the
//     version they observed instead, so version checking (§5.1) never
//     reports false divergence under partial-order replay (§4.2).
package rexsync

import (
	"rex/internal/sched"
	"rex/internal/trace"
)

// Stopped is panicked out of a blocked primitive when the replica shuts
// down; the worker loop recovers it and exits cleanly.
type Stopped struct{}

// redoAfterAbort decides what to do when a replay wait is aborted: if the
// runtime switched to record mode (this replica was promoted mid-request,
// §4's mode change), the caller re-runs the operation in record mode;
// otherwise the replica is shutting down.
func redoAfterAbort(w *sched.Worker) {
	if w.Runtime().Mode() == sched.ModeRecord {
		return
	}
	panic(Stopped{})
}

// expectEvent fetches the next trace event for w's thread and validates its
// kind and resource. ok=false means the replay was aborted (the caller
// consults redoAfterAbort). A mismatch is a divergence: the secondary's
// execution took a different path than the primary's (§5.1).
func expectEvent(w *sched.Worker, kind trace.Kind, res uint32, resName string) (trace.Event, trace.EventID, bool) {
	rep := w.Runtime().Replayer()
	ev, id, ok := rep.Next(w.ID())
	if !ok {
		return trace.Event{}, trace.EventID{}, false
	}
	if ev.Kind != kind || ev.Res != res {
		panic(&sched.DivergenceError{
			Thread:   id.Thread,
			Clock:    id.Clock,
			Expected: ev,
			GotKind:  kind,
			GotRes:   res,
			Resource: resName,
			Detail:   "operation does not match the recorded trace",
		})
	}
	return ev, id, true
}

// expectOneOf is expectEvent for operations whose recorded outcome selects
// among several kinds (TryLock → TryAcq or TryFail).
func expectOneOf(w *sched.Worker, res uint32, resName string, kinds ...trace.Kind) (trace.Event, trace.EventID, bool) {
	rep := w.Runtime().Replayer()
	ev, id, ok := rep.Next(w.ID())
	if !ok {
		return trace.Event{}, trace.EventID{}, false
	}
	for _, k := range kinds {
		if ev.Kind == k && ev.Res == res {
			return ev, id, true
		}
	}
	panic(&sched.DivergenceError{
		Thread:   id.Thread,
		Clock:    id.Clock,
		Expected: ev,
		GotKind:  kinds[0],
		GotRes:   res,
		Resource: resName,
		Detail:   "operation does not match the recorded trace",
	})
}

// checkVersion verifies a resource version against the recorded one when
// version checking is enabled (§5.1).
func checkVersion(w *sched.Worker, ev trace.Event, id trace.EventID, got uint64, resName string) {
	if !w.Runtime().CheckVersions {
		return
	}
	if ev.Arg != got {
		panic(&sched.DivergenceError{
			Thread:   id.Thread,
			Clock:    id.Clock,
			Expected: ev,
			GotKind:  ev.Kind,
			GotRes:   ev.Res,
			GotArg:   got,
			Resource: resName,
			Detail:   "resource version mismatch (likely an unsynchronized data race)",
		})
	}
}

// waitSources blocks until all of id's causal sources have executed,
// reporting false on abort.
func waitSources(w *sched.Worker, id trace.EventID) bool {
	rep := w.Runtime().Replayer()
	return rep.WaitSources(rep.In(id))
}

// Value executes a nondeterministic function under Rex: in record mode it
// runs compute and logs the result; in replay mode it returns the recorded
// result without running compute (values, unlike resources, are safe to
// fake — §4); in native mode it just runs compute. tag distinguishes
// value sources (time, random, ...) for divergence checking.
func Value(w *sched.Worker, tag uint32, compute func() uint64) uint64 {
	for {
		switch w.Mode() {
		case sched.ModeNative:
			return compute()
		case sched.ModeRecord:
			v := compute()
			w.Record(trace.Event{Kind: trace.KindValue, Res: tag, Arg: v}, nil)
			return v
		default:
			ev, id, ok := expectEvent(w, trace.KindValue, tag, "value")
			if !ok {
				redoAfterAbort(w)
				continue
			}
			_ = id
			w.Runtime().Replayer().Commit(w.ID())
			return ev.Arg
		}
	}
}
