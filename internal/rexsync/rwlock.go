package rexsync

import (
	"rex/internal/env"
	"rex/internal/sched"
	"rex/internal/trace"
	"rex/internal/vclock"
)

// rwCore is a real readers–writer lock built from env primitives so it
// works under both the real and the simulated environment. It is
// writer-preferring: arriving readers wait while a writer is waiting, which
// prevents writer starvation (matching the behaviour server applications
// expect from e.g. Kyoto Cabinet's slice locks).
type rwCore struct {
	mu             env.Mutex
	rCond, wCond   env.Cond
	readers        int
	writer         bool
	writersWaiting int
}

func newRWCore(e env.Env) *rwCore {
	c := &rwCore{mu: e.NewMutex()}
	c.rCond = e.NewCond(c.mu)
	c.wCond = e.NewCond(c.mu)
	return c
}

func (c *rwCore) RLock() {
	c.mu.Lock()
	for c.writer || c.writersWaiting > 0 {
		c.rCond.Wait()
	}
	c.readers++
	c.mu.Unlock()
}

func (c *rwCore) RUnlock() {
	c.mu.Lock()
	c.readers--
	if c.readers < 0 {
		c.mu.Unlock()
		panic("rexsync: RUnlock without RLock")
	}
	if c.readers == 0 {
		c.wCond.Signal()
	}
	c.mu.Unlock()
}

func (c *rwCore) Lock() {
	c.mu.Lock()
	c.writersWaiting++
	for c.writer || c.readers > 0 {
		c.wCond.Wait()
	}
	c.writersWaiting--
	c.writer = true
	c.mu.Unlock()
}

func (c *rwCore) Unlock() {
	c.mu.Lock()
	if !c.writer {
		c.mu.Unlock()
		panic("rexsync: Unlock without Lock")
	}
	c.writer = false
	if c.writersWaiting > 0 {
		c.wCond.Signal()
	} else {
		c.rCond.Broadcast()
	}
	c.mu.Unlock()
}

// RWLock is Rex's readers–writer lock (the paper's RexReadWriteLock).
// Reader acquisitions are mutually unordered in the trace — they record
// only an edge from the last writer release and the version they observed —
// so concurrent readers replay concurrently (§4.2's partial-order
// trade-off applied to readers/writer locks).
type RWLock struct {
	rt   *sched.Runtime
	id   uint32
	name string
	// class is the conflict class that owns this lock (0 = unowned); see
	// Lock.class for the ownership contract. When the executing request is
	// in the owning class, all four operations are elided from the trace:
	// the class's requests are serialized on one thread, so reader/writer
	// ordering is implied by program order, and the real rwCore still
	// excludes native-mode readers.
	class uint32
	real  *rwCore
	meta  env.Mutex

	epoch uint64
	ver   *uint64
	// lastWRel is the most recent writer-release event; readers and the
	// next writer record edges from it.
	lastWRel   trace.EventID
	lastWRelVC vclock.VC
	// readerRels accumulates reader-release events since the last writer
	// acquisition; the next writer acquisition records edges from all of
	// them (it must wait for every reader).
	readerRels   []trace.EventID
	readerRelVCs []vclock.VC
}

// NewRWLock creates a readers–writer lock registered with the runtime.
func NewRWLock(rt *sched.Runtime, name string) *RWLock {
	id := rt.RegisterResource(name)
	return &RWLock{
		rt:   rt,
		id:   id,
		name: name,
		ver:  rt.Version(id),
		real: newRWCore(rt.Env),
		meta: rt.Env.NewMutex(),
	}
}

// NewRWLockInClass creates a readers–writer lock owned by the given
// conflict class (see NewLockInClass for the ownership contract).
func NewRWLockInClass(rt *sched.Runtime, name string, class uint32) *RWLock {
	l := NewRWLock(rt, name)
	l.class = class
	return l
}

// ID returns the lock's resource id.
func (l *RWLock) ID() uint32 { return l.id }

// Class returns the conflict class that owns the lock (0 = unowned).
func (l *RWLock) Class() uint32 { return l.class }

func (l *RWLock) refreshLocked() {
	if e := l.rt.Epoch(); l.epoch != e {
		l.epoch = e
		l.lastWRelVC = nil
		for i := range l.readerRelVCs {
			l.readerRelVCs[i] = nil
		}
	}
}

// RLock acquires l for reading.
func (l *RWLock) RLock(w *sched.Worker) {
	if w.ElideFor(l.class) {
		l.real.RLock()
		return
	}
	for {
		switch w.Mode() {
		case sched.ModeNative:
			l.real.RLock()
			return
		case sched.ModeRecord:
			l.real.RLock()
			l.meta.Lock()
			l.refreshLocked()
			var in []trace.EventID
			if !w.PruneEdge(l.lastWRel) {
				in = append(in, l.lastWRel)
			}
			w.JoinVC(l.lastWRelVC)
			// Readers do not bump the version: concurrent reader
			// acquisitions commute; they record the version observed.
			w.Record(trace.Event{Kind: trace.KindRLockAcq, Res: l.id, Arg: *l.ver}, in)
			l.meta.Unlock()
			return
		default:
			ev, id, ok := expectEvent(w, trace.KindRLockAcq, l.id, l.name)
			if !ok {
				redoAfterAbort(w)
				continue
			}
			if !waitSources(w, id) {
				redoAfterAbort(w)
				continue
			}
			l.real.RLock()
			l.meta.Lock()
			l.refreshLocked()
			checkVersion(w, ev, id, *l.ver, l.name)
			l.meta.Unlock()
			w.Runtime().Replayer().Commit(w.ID())
			return
		}
	}
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock(w *sched.Worker) {
	if w.ElideFor(l.class) {
		l.real.RUnlock()
		return
	}
	for {
		switch w.Mode() {
		case sched.ModeNative:
			l.real.RUnlock()
			return
		case sched.ModeRecord:
			l.meta.Lock()
			l.refreshLocked()
			id := w.Record(trace.Event{Kind: trace.KindRLockRel, Res: l.id, Arg: *l.ver}, nil)
			l.readerRels = append(l.readerRels, id)
			l.readerRelVCs = append(l.readerRelVCs, w.VC().Clone())
			l.meta.Unlock()
			l.real.RUnlock()
			return
		default:
			ev, id, ok := expectEvent(w, trace.KindRLockRel, l.id, l.name)
			if !ok {
				redoAfterAbort(w)
				continue
			}
			if !waitSources(w, id) {
				redoAfterAbort(w)
				continue
			}
			l.meta.Lock()
			l.refreshLocked()
			checkVersion(w, ev, id, *l.ver, l.name)
			l.readerRels = append(l.readerRels, id)
			l.readerRelVCs = append(l.readerRelVCs, nil)
			l.meta.Unlock()
			l.real.RUnlock()
			w.Runtime().Replayer().Commit(w.ID())
			return
		}
	}
}

// Lock acquires l for writing.
func (l *RWLock) Lock(w *sched.Worker) {
	if w.ElideFor(l.class) {
		l.real.Lock()
		return
	}
	for {
		switch w.Mode() {
		case sched.ModeNative:
			l.real.Lock()
			return
		case sched.ModeRecord:
			l.real.Lock()
			l.meta.Lock()
			l.refreshLocked()
			*l.ver++
			var in []trace.EventID
			if !w.PruneEdge(l.lastWRel) {
				in = append(in, l.lastWRel)
			}
			w.JoinVC(l.lastWRelVC)
			for i, r := range l.readerRels {
				if !w.PruneEdge(r) {
					in = append(in, r)
				}
				w.JoinVC(l.readerRelVCs[i])
			}
			l.readerRels = l.readerRels[:0]
			l.readerRelVCs = l.readerRelVCs[:0]
			w.Record(trace.Event{Kind: trace.KindWLockAcq, Res: l.id, Arg: *l.ver}, in)
			l.meta.Unlock()
			return
		default:
			ev, id, ok := expectEvent(w, trace.KindWLockAcq, l.id, l.name)
			if !ok {
				redoAfterAbort(w)
				continue
			}
			// Wait for every recorded reader release and the previous
			// writer release before taking the real write lock.
			if !waitSources(w, id) {
				redoAfterAbort(w)
				continue
			}
			l.real.Lock()
			l.meta.Lock()
			l.refreshLocked()
			*l.ver++
			checkVersion(w, ev, id, *l.ver, l.name)
			l.readerRels = l.readerRels[:0]
			l.readerRelVCs = l.readerRelVCs[:0]
			l.meta.Unlock()
			w.Runtime().Replayer().Commit(w.ID())
			return
		}
	}
}

// Unlock releases a write acquisition.
func (l *RWLock) Unlock(w *sched.Worker) {
	if w.ElideFor(l.class) {
		l.real.Unlock()
		return
	}
	for {
		switch w.Mode() {
		case sched.ModeNative:
			l.real.Unlock()
			return
		case sched.ModeRecord:
			l.meta.Lock()
			l.refreshLocked()
			*l.ver++
			id := w.Record(trace.Event{Kind: trace.KindWLockRel, Res: l.id, Arg: *l.ver}, nil)
			l.lastWRel = id
			l.lastWRelVC = w.VC().Clone()
			l.meta.Unlock()
			l.real.Unlock()
			return
		default:
			ev, id, ok := expectEvent(w, trace.KindWLockRel, l.id, l.name)
			if !ok {
				redoAfterAbort(w)
				continue
			}
			if !waitSources(w, id) {
				redoAfterAbort(w)
				continue
			}
			l.meta.Lock()
			l.refreshLocked()
			*l.ver++
			checkVersion(w, ev, id, *l.ver, l.name)
			l.lastWRel = id
			l.meta.Unlock()
			l.real.Unlock()
			w.Runtime().Replayer().Commit(w.ID())
			return
		}
	}
}
