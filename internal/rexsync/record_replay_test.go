package rexsync

import (
	"fmt"
	"testing"
	"time"

	"rex/internal/env"
	"rex/internal/sched"
	"rex/internal/sim"
	"rex/internal/trace"
)

// script is a per-worker program run against a shared world; the same
// scripts run in record mode on one runtime and in replay mode on another,
// and the worlds must end up identical.
type script func(w *sched.Worker, world *world)

// world is shared mutable state whose final value is order-sensitive, so
// identical outcomes imply identical synchronization order.
type world struct {
	lockA, lockB *Lock
	rw           *RWLock
	cond         *Cond
	sem          *Semaphore

	log     []string // appended under lockA: captures acquisition order
	counter int      // guarded by lockB
	shared  int      // guarded by rw
	queue   []int    // guarded by lockA, cond signals availability
	reads   []int    // values observed by readers (appended under lockB)
}

func newWorld(rt *sched.Runtime) *world {
	w := &world{}
	w.lockA = NewLock(rt, "A")
	w.lockB = NewLock(rt, "B")
	w.rw = NewRWLock(rt, "rw")
	w.cond = NewCond(rt, "cv", w.lockA)
	w.sem = NewSemaphore(rt, "sem", 2)
	return w
}

func (wl *world) snapshot() string {
	return fmt.Sprintf("log=%v counter=%d shared=%d queue=%v reads=%v",
		wl.log, wl.counter, wl.shared, wl.queue, wl.reads)
}

// runScripts executes one script per worker on the given runtime and waits
// for completion. Any Stopped panic is swallowed (used in abort tests).
func runScripts(e env.Env, rt *sched.Runtime, wl *world, scripts []script) {
	g := env.NewGroup(e)
	g.Add(len(scripts))
	for i := range scripts {
		i := i
		e.Go(fmt.Sprintf("worker-%d", i), func() {
			defer g.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(Stopped); ok {
						return
					}
					panic(r)
				}
			}()
			scripts[i](rt.Worker(i), wl)
		})
	}
	g.Wait()
}

// recordRun records the scripts on a fresh runtime and returns the trace
// and the final world snapshot.
func recordRun(t *testing.T, cores, nWorkers int, scripts []script) (*trace.Trace, string, trace.Stats) {
	t.Helper()
	var tr *trace.Trace
	var snap string
	var stats trace.Stats
	e := sim.New(cores)
	e.Run(func() {
		rt := sched.NewRuntime(e, nWorkers, sched.ModeNative)
		rt.StartRecord(nil, 0)
		wl := newWorld(rt)
		runScripts(e, rt, wl, scripts)
		d := rt.Recorder().Collect()
		tr = trace.New(nWorkers)
		if d != nil {
			if err := tr.Apply(d); err != nil {
				t.Errorf("apply recorded delta: %v", err)
			}
		}
		snap = wl.snapshot()
		stats = tr.Stats()
	})
	return tr, snap, stats
}

// replayRun replays tr on a fresh runtime and returns the final snapshot.
func replayRun(t *testing.T, cores, nWorkers int, tr *trace.Trace, scripts []script) string {
	t.Helper()
	var snap string
	e := sim.New(cores)
	e.Run(func() {
		rt := sched.NewRuntime(e, nWorkers, sched.ModeNative)
		rt.StartReplay(tr, nil)
		wl := newWorld(rt)
		runScripts(e, rt, wl, scripts)
		if !rt.Replayer().CaughtUp() {
			t.Errorf("replay did not consume the full trace: executed=%v limit=%v",
				rt.Replayer().Executed(), rt.Replayer().Limit())
		}
		snap = wl.snapshot()
	})
	return snap
}

func checkRecordReplay(t *testing.T, cores, nWorkers int, scripts []script) (*trace.Trace, trace.Stats) {
	t.Helper()
	tr, want, stats := recordRun(t, cores, nWorkers, scripts)
	if !tr.IsConsistent(tr.Cut()) {
		t.Fatalf("recorded trace is not consistent at rest")
	}
	for run := 0; run < 2; run++ {
		got := replayRun(t, cores, nWorkers, tr, scripts)
		if got != want {
			t.Fatalf("replay %d diverged:\nrecord: %s\nreplay: %s", run, want, got)
		}
	}
	return tr, stats
}

func TestLockOrderReplay(t *testing.T) {
	scripts := make([]script, 4)
	for i := range scripts {
		id := i
		scripts[i] = func(w *sched.Worker, wl *world) {
			for j := 0; j < 10; j++ {
				wl.lockA.Lock(w)
				wl.log = append(wl.log, fmt.Sprintf("%d.%d", id, j))
				wl.lockA.Unlock(w)
				w.Runtime().Env.Compute(time.Duration(id+1) * 100 * time.Microsecond)
			}
		}
	}
	tr, _ := checkRecordReplay(t, 4, 4, scripts)
	if tr.EventCount() == 0 {
		t.Fatal("no events recorded")
	}
}

func TestTwoLocksInterleaved(t *testing.T) {
	scripts := make([]script, 6)
	for i := range scripts {
		id := i
		scripts[i] = func(w *sched.Worker, wl *world) {
			for j := 0; j < 8; j++ {
				if (id+j)%2 == 0 {
					wl.lockA.Lock(w)
					wl.log = append(wl.log, fmt.Sprintf("a%d", id))
					wl.lockA.Unlock(w)
				} else {
					wl.lockB.Lock(w)
					wl.counter += id + 1
					wl.lockB.Unlock(w)
				}
				w.Runtime().Env.Compute(50 * time.Microsecond)
			}
		}
	}
	checkRecordReplay(t, 3, 6, scripts)
}

func TestTryLockFig4(t *testing.T) {
	// Thread 0 holds the lock for a long compute; threads 1 and 2 issue
	// TryLocks that fail while it is held (the paper's Fig. 4), recording
	// the partial-order edges. The recorded outcomes must replay exactly.
	scripts := []script{
		func(w *sched.Worker, wl *world) {
			wl.lockA.Lock(w)
			w.Runtime().Env.Compute(2 * time.Millisecond)
			wl.log = append(wl.log, "holder")
			wl.lockA.Unlock(w)
		},
		func(w *sched.Worker, wl *world) {
			w.Runtime().Env.Sleep(100 * time.Microsecond)
			for j := 0; j < 3; j++ {
				got := wl.lockA.TryLock(w)
				wl.lockB.Lock(w)
				wl.log = append(wl.log, fmt.Sprintf("t1=%v", got))
				wl.lockB.Unlock(w)
				if got {
					wl.lockA.Unlock(w)
				}
				w.Runtime().Env.Compute(300 * time.Microsecond)
			}
		},
		func(w *sched.Worker, wl *world) {
			w.Runtime().Env.Sleep(200 * time.Microsecond)
			for j := 0; j < 3; j++ {
				got := wl.lockA.TryLock(w)
				wl.lockB.Lock(w)
				wl.log = append(wl.log, fmt.Sprintf("t2=%v", got))
				wl.lockB.Unlock(w)
				if got {
					wl.lockA.Unlock(w)
				}
				w.Runtime().Env.Compute(300 * time.Microsecond)
			}
		},
	}
	tr, _ := checkRecordReplay(t, 3, 3, scripts)
	// The recording must contain failed TryLocks for the test to be
	// meaningful.
	fails := 0
	for _, th := range tr.Threads {
		for _, ev := range th.Events {
			if ev.Kind == trace.KindTryFail {
				fails++
			}
		}
	}
	if fails == 0 {
		t.Fatal("scenario recorded no failed TryLocks")
	}
}

func TestCondProducerConsumer(t *testing.T) {
	// One producer, two consumers over a cond-guarded queue. Which
	// consumer gets which item is nondeterministic — the trace must pin it.
	const items = 12
	producer := func(w *sched.Worker, wl *world) {
		for j := 1; j <= items; j++ {
			wl.lockA.Lock(w)
			wl.queue = append(wl.queue, j)
			wl.cond.Signal(w)
			wl.lockA.Unlock(w)
			w.Runtime().Env.Compute(100 * time.Microsecond)
		}
	}
	consumer := func(id int) script {
		return func(w *sched.Worker, wl *world) {
			for taken := 0; taken < items/2; taken++ {
				wl.lockA.Lock(w)
				for len(wl.queue) == 0 {
					wl.cond.Wait(w)
				}
				v := wl.queue[0]
				wl.queue = wl.queue[1:]
				wl.log = append(wl.log, fmt.Sprintf("c%d<-%d", id, v))
				wl.lockA.Unlock(w)
				w.Runtime().Env.Compute(50 * time.Microsecond)
			}
		}
	}
	checkRecordReplay(t, 3, 3, []script{producer, consumer(1), consumer(2)})
}

func TestCondBroadcastReplay(t *testing.T) {
	release := func(w *sched.Worker, wl *world) {
		w.Runtime().Env.Sleep(time.Millisecond)
		wl.lockA.Lock(w)
		wl.counter = 100
		wl.cond.Broadcast(w)
		wl.lockA.Unlock(w)
	}
	waiter := func(id int) script {
		return func(w *sched.Worker, wl *world) {
			wl.lockA.Lock(w)
			for wl.counter == 0 {
				wl.cond.Wait(w)
			}
			wl.log = append(wl.log, fmt.Sprintf("w%d", id))
			wl.lockA.Unlock(w)
		}
	}
	checkRecordReplay(t, 4, 4, []script{release, waiter(1), waiter(2), waiter(3)})
}

func TestRWLockReplay(t *testing.T) {
	writer := func(w *sched.Worker, wl *world) {
		for j := 0; j < 6; j++ {
			wl.rw.Lock(w)
			wl.shared++
			wl.rw.Unlock(w)
			w.Runtime().Env.Compute(200 * time.Microsecond)
		}
	}
	reader := func(w *sched.Worker, wl *world) {
		for j := 0; j < 6; j++ {
			wl.rw.RLock(w)
			v := wl.shared
			wl.rw.RUnlock(w)
			wl.lockB.Lock(w)
			wl.reads = append(wl.reads, v)
			wl.lockB.Unlock(w)
			w.Runtime().Env.Compute(150 * time.Microsecond)
		}
	}
	checkRecordReplay(t, 4, 4, []script{writer, reader, reader, reader})
}

func TestSemaphoreReplay(t *testing.T) {
	user := func(id int) script {
		return func(w *sched.Worker, wl *world) {
			for j := 0; j < 5; j++ {
				wl.sem.Acquire(w)
				wl.lockB.Lock(w)
				wl.counter++
				if wl.counter > 2 {
					wl.log = append(wl.log, "OVERFLOW")
				}
				wl.lockB.Unlock(w)
				w.Runtime().Env.Compute(100 * time.Microsecond)
				wl.lockB.Lock(w)
				wl.counter--
				wl.lockB.Unlock(w)
				wl.sem.Release(w)
			}
		}
	}
	tr, _ := checkRecordReplay(t, 4, 4, []script{user(0), user(1), user(2), user(3)})
	for _, th := range tr.Threads {
		for _, ev := range th.Events {
			if ev.Kind == trace.KindSemAcq {
				return
			}
		}
	}
	t.Fatal("no semaphore events recorded")
}

func TestValueReplay(t *testing.T) {
	// Nondeterministic values recorded on the primary must be returned
	// verbatim on replay without re-running compute.
	calls := 0
	scr := func(w *sched.Worker, wl *world) {
		for j := 0; j < 5; j++ {
			v := Value(w, 7, func() uint64 {
				calls++
				return uint64(1000 + calls)
			})
			wl.lockA.Lock(w)
			wl.log = append(wl.log, fmt.Sprintf("v=%d", v))
			wl.lockA.Unlock(w)
		}
	}
	tr, want, _ := recordRun(t, 2, 2, []script{scr, scr})
	recordCalls := calls
	got := replayRun(t, 2, 2, tr, []script{scr, scr})
	if got != want {
		t.Fatalf("value replay diverged:\n%s\n%s", want, got)
	}
	if calls != recordCalls {
		t.Errorf("compute ran %d extra times during replay", calls-recordCalls)
	}
}

func TestNativeExecNotRecorded(t *testing.T) {
	scr := func(w *sched.Worker, wl *world) {
		w.Native(func() {
			wl.lockA.Lock(w)
			wl.counter++
			wl.lockA.Unlock(w)
		})
		wl.lockB.Lock(w)
		wl.log = append(wl.log, "x")
		wl.lockB.Unlock(w)
	}
	tr, _, _ := recordRun(t, 2, 2, []script{scr, scr})
	for _, th := range tr.Threads {
		for _, ev := range th.Events {
			if ev.Res == 1 { // lockA is the first registered resource
				t.Fatalf("NativeExec scope recorded event %v on lock A", ev.Kind)
			}
		}
	}
}

func TestEdgePruningReducesEdges(t *testing.T) {
	// A ping-pong pattern on two locks: most cross-thread edges are implied
	// transitively, so pruning must remove a large fraction (§4.2 reports
	// 58-99%).
	scripts := make([]script, 2)
	for i := range scripts {
		scripts[i] = func(w *sched.Worker, wl *world) {
			for j := 0; j < 50; j++ {
				wl.lockA.Lock(w)
				wl.lockB.Lock(w)
				wl.counter++
				wl.lockB.Unlock(w)
				wl.lockA.Unlock(w)
			}
		}
	}
	tr, _ := checkRecordReplay(t, 2, 2, scripts)
	events := tr.EventCount()
	edges := tr.EdgeCount()
	// Unpruned, every acquire would carry an edge (~half the events).
	// With pruning, the lockB chain inside the lockA critical section is
	// implied by lockA's chain, halving the edges.
	if edges >= events/3 {
		t.Errorf("pruning ineffective: %d edges for %d events", edges, events)
	}
}

func TestDivergenceDetectedOnTamperedTrace(t *testing.T) {
	scripts := make([]script, 2)
	for i := range scripts {
		scripts[i] = func(w *sched.Worker, wl *world) {
			for j := 0; j < 3; j++ {
				wl.lockA.Lock(w)
				wl.counter++
				wl.lockA.Unlock(w)
			}
		}
	}
	tr, _, _ := recordRun(t, 2, 2, scripts)
	// Corrupt a version number: replay must detect the mismatch.
	tampered := false
	for t0 := range tr.Threads {
		for i := range tr.Threads[t0].Events {
			ev := &tr.Threads[t0].Events[i]
			if ev.Kind == trace.KindLockAcq && !tampered {
				ev.Arg += 7
				tampered = true
			}
		}
	}
	if !tampered {
		t.Fatal("no event to tamper with")
	}
	e := sim.New(2)
	var div *sched.DivergenceError
	e.Run(func() {
		rt := sched.NewRuntime(e, 2, sched.ModeNative)
		rt.StartReplay(tr, nil)
		wl := newWorld(rt)
		g := env.NewGroup(e)
		g.Add(2)
		for i := 0; i < 2; i++ {
			i := i
			e.Go("w", func() {
				defer g.Done()
				defer func() {
					if r := recover(); r != nil {
						if d, ok := r.(*sched.DivergenceError); ok {
							div = d
							rt.Replayer().Abort()
							return
						}
						if _, ok := r.(Stopped); ok {
							return
						}
						panic(r)
					}
				}()
				scripts[i](rt.Worker(i), wl)
			})
		}
		g.Wait()
	})
	if div == nil {
		t.Fatal("tampered trace replayed without divergence")
	}
}

func TestPromotionMidStream(t *testing.T) {
	// Record a two-phase run on A. Deliver only phase 1 to B; while B's
	// workers are blocked waiting for phase 2, promote B (StartRecord +
	// Abort). The workers must switch to record mode mid-script, finish
	// phase 2 live, and B must end in a state consistent with running the
	// full scripts — with phase 2 freshly recorded by B.
	const perPhase = 5
	phase := func(w *sched.Worker, wl *world, id int, n int) {
		for j := 0; j < n; j++ {
			wl.lockA.Lock(w)
			wl.log = append(wl.log, fmt.Sprintf("%d", id))
			wl.lockA.Unlock(w)
		}
	}
	scripts := make([]script, 3)
	for i := range scripts {
		id := i
		scripts[i] = func(w *sched.Worker, wl *world) {
			phase(w, wl, id, perPhase)
			phase(w, wl, id, perPhase)
		}
	}

	// Record phase 1 and phase 2 as separate deltas on A.
	var d1 *trace.Delta
	eA := sim.New(3)
	eA.Run(func() {
		rt := sched.NewRuntime(eA, 3, sched.ModeNative)
		rt.StartRecord(nil, 0)
		wl := newWorld(rt)
		g := env.NewGroup(eA)
		g.Add(3)
		barrier := env.NewGroup(eA)
		barrier.Add(3)
		for i := 0; i < 3; i++ {
			i := i
			eA.Go("w", func() {
				defer g.Done()
				phase(rt.Worker(i), wl, i, perPhase)
				barrier.Done()
				barrier.Wait()
				phase(rt.Worker(i), wl, i, perPhase)
			})
		}
		barrier.Wait()
		d1 = rt.Recorder().Collect()
		g.Wait()
	})
	if d1 == nil {
		t.Fatal("phase 1 delta empty")
	}

	// B replays phase 1 only, then gets promoted.
	eB := sim.New(3)
	var logLen int
	var newEvents int
	eB.Run(func() {
		rt := sched.NewRuntime(eB, 3, sched.ModeNative)
		tr := trace.New(3)
		if err := tr.Apply(d1); err != nil {
			t.Errorf("apply d1: %v", err)
			return
		}
		rt.StartReplay(tr, nil)
		wl := newWorld(rt)
		g := env.NewGroup(eB)
		g.Add(3)
		for i := 0; i < 3; i++ {
			i := i
			eB.Go("w", func() {
				defer g.Done()
				scripts[i](rt.Worker(i), wl)
			})
		}
		rep := rt.Replayer()
		if !rep.WaitCaughtUp() {
			t.Error("replay never caught up to phase 1")
			return
		}
		// Promote: continue recording from the replayed cut.
		cut := rep.Executed()
		rt.StartRecord(cut, 0)
		rep.Abort()
		g.Wait()
		logLen = len(wl.log)
		d2 := rt.Recorder().Collect()
		if d2 != nil {
			newEvents = d2.EventCount()
			if !d2.Base.Equal(cut) {
				t.Errorf("post-promotion delta base %v, want %v", d2.Base, cut)
			}
		}
	})
	if want := 3 * 2 * perPhase; logLen != want {
		t.Errorf("log has %d entries after promotion, want %d", logLen, want)
	}
	if newEvents == 0 {
		t.Error("promotion recorded no new events")
	}
}

func TestHybridNativeReaderDoesNotPolluteTrace(t *testing.T) {
	// A fixed-native worker (read pool) locks and unlocks concurrently
	// with recorded workers; the trace must contain only the recorded
	// workers' events and still replay to the same state.
	scripts := make([]script, 2)
	for i := range scripts {
		scripts[i] = func(w *sched.Worker, wl *world) {
			for j := 0; j < 10; j++ {
				wl.lockA.Lock(w)
				wl.counter++
				wl.lockA.Unlock(w)
				w.Runtime().Env.Compute(100 * time.Microsecond)
			}
		}
	}
	var tr *trace.Trace
	var want string
	observed := 0
	e := sim.New(3)
	e.Run(func() {
		rt := sched.NewRuntime(e, 2, sched.ModeNative)
		rt.StartRecord(nil, 0)
		wl := newWorld(rt)
		stop := false // plain flag: the sim serializes tasks, no data race
		reader := rt.NativeWorker()
		g := env.NewGroup(e)
		g.Add(1)
		e.Go("reader", func() {
			defer g.Done()
			for !stop {
				wl.lockA.Lock(reader)
				observed += wl.counter // native read under the real lock
				wl.lockA.Unlock(reader)
				e.Sleep(50 * time.Microsecond)
			}
		})
		runScripts(e, rt, wl, scripts)
		stop = true
		g.Wait()
		d := rt.Recorder().Collect()
		tr = trace.New(2)
		if err := tr.Apply(d); err != nil {
			t.Errorf("apply: %v", err)
		}
		want = wl.snapshot()
	})
	if observed == 0 {
		t.Fatal("native reader never observed anything; scenario vacuous")
	}
	got := replayRun(t, 3, 2, tr, scripts)
	if got != want {
		t.Fatalf("hybrid record/replay diverged:\nrecord: %s\nreplay: %s", want, got)
	}
}
