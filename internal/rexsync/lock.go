package rexsync

import (
	"rex/internal/env"
	"rex/internal/sched"
	"rex/internal/trace"
	"rex/internal/vclock"
)

// Lock is Rex's mutex (the paper's RexLock, Fig. 3). On the primary it
// behaves exactly like a traditional mutex while recording acquisition
// order; on secondaries it enforces the recorded order.
type Lock struct {
	rt   *sched.Runtime
	id   uint32
	name string
	// class is the conflict class that owns this lock (0 = unowned). A
	// class-owned lock may only be touched by requests of that class (all
	// serialized on one deterministic thread), by catch-all requests under
	// the dispatch barrier, and by native-mode readers; its Lock/Unlock
	// events are elided from the trace when the executing request is in
	// the owning class, because program order already implies them.
	class uint32

	real env.Mutex
	// meta guards the recording bookkeeping below. It is ordered after
	// real everywhere (real is acquired first), and it is what makes a
	// failed TryLock's event logging atomic with respect to the holder's
	// acquire/release events (§4.1).
	meta env.Mutex

	epoch uint64
	// ver points at the runtime's version slot for this resource (§5.1);
	// versions live in the runtime so checkpoints capture them.
	ver *uint64
	// lastRel is the most recent release-like event (unlock or
	// cond-wait-begin); the next acquire records an edge from it.
	lastRel trace.EventID
	// relVC is the releaser's vector clock at lastRel, used to prune
	// redundant edges. nil means "the current epoch's base cut", which
	// covers everything before a promotion barrier.
	relVC vclock.VC
	// holderAcq is the acquire-like event of the current holder; failed
	// TryLocks record an edge from it (Fig. 4).
	holderAcq trace.EventID
	// tryFails are the failed-TryLock events since the current acquire;
	// the next release records edges from them so that replayed TryFails
	// happen while the lock is still held (Fig. 4).
	tryFails []trace.EventID
	// lastChain is the most recent event in the resource's total order,
	// maintained only under the TotalOrderTryFail ablation.
	lastChain trace.EventID
}

// NewLock creates a lock registered with the runtime. Locks must be
// created in a deterministic order across replicas (normally at state
// machine construction).
func NewLock(rt *sched.Runtime, name string) *Lock {
	id := rt.RegisterResource(name)
	return &Lock{
		rt:   rt,
		id:   id,
		name: name,
		ver:  rt.Version(id),
		real: rt.Env.NewMutex(),
		meta: rt.Env.NewMutex(),
	}
}

// NewLockInClass creates a lock owned by the given conflict class. The
// application promises the contract in the class field's doc: only the
// owning class's requests (plus barriered catch-all requests and native
// readers) touch it, never background timers, and only via Lock/Unlock.
func NewLockInClass(rt *sched.Runtime, name string, class uint32) *Lock {
	l := NewLock(rt, name)
	l.class = class
	return l
}

// ID returns the lock's resource id.
func (l *Lock) ID() uint32 { return l.id }

// Class returns the conflict class that owns the lock (0 = unowned).
func (l *Lock) Class() uint32 { return l.class }

// Real returns the underlying mutex (used by Cond to build on it).
func (l *Lock) Real() env.Mutex { return l.real }

// refreshLocked resets epoch-scoped pruning state after a promotion.
// Called with meta held.
func (l *Lock) refreshLocked() {
	if e := l.rt.Epoch(); l.epoch != e {
		l.epoch = e
		l.relVC = nil
	}
}

// Lock acquires l under the worker's current execution mode. When the
// executing request's conflict class owns the lock, the acquisition is
// elided from the trace in record AND replay mode — both sides derive the
// class from the request, so they agree — and only the real mutex is
// taken (still needed against native-mode readers).
func (l *Lock) Lock(w *sched.Worker) {
	if w.ElideFor(l.class) {
		l.real.Lock()
		return
	}
	for {
		switch w.Mode() {
		case sched.ModeNative:
			l.real.Lock()
			return
		case sched.ModeRecord:
			l.lockRecord(w)
			return
		default:
			if l.lockReplay(w) {
				return
			}
			redoAfterAbort(w)
		}
	}
}

// Unlock releases l.
func (l *Lock) Unlock(w *sched.Worker) {
	if w.ElideFor(l.class) {
		l.real.Unlock()
		return
	}
	for {
		switch w.Mode() {
		case sched.ModeNative:
			l.real.Unlock()
			return
		case sched.ModeRecord:
			l.unlockRecord(w)
			return
		default:
			if l.unlockReplay(w) {
				return
			}
			redoAfterAbort(w)
		}
	}
}

// TryLock attempts to acquire l without blocking and reports success. The
// outcome is part of the trace: secondaries reproduce the recorded result.
// Class-owned locks do not support TryLock: elided Lock/Unlock events
// leave the holder/version metadata a TryFail edge would hang off stale.
func (l *Lock) TryLock(w *sched.Worker) bool {
	if l.class != 0 {
		panic("rexsync: TryLock on conflict-class lock " + l.name + " (class-owned locks support only Lock/Unlock)")
	}
	for {
		switch w.Mode() {
		case sched.ModeNative:
			return l.real.TryLock()
		case sched.ModeRecord:
			return l.tryLockRecord(w)
		default:
			got, ok := l.tryLockReplay(w)
			if ok {
				return got
			}
			redoAfterAbort(w)
		}
	}
}

func (l *Lock) lockRecord(w *sched.Worker) {
	l.real.Lock()
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	src := l.lastRel
	if l.rt.TotalOrderTryFail && l.lastChain != (trace.EventID{}) {
		src = l.lastChain
	}
	var in []trace.EventID
	if !w.PruneEdge(src) {
		in = append(in, src)
	}
	w.JoinVC(l.relVC)
	l.holderAcq = w.Record(trace.Event{Kind: trace.KindLockAcq, Res: l.id, Arg: *l.ver}, in)
	l.lastChain = l.holderAcq
	l.meta.Unlock()
}

func (l *Lock) unlockRecord(w *sched.Worker) {
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	var in []trace.EventID
	for _, tf := range l.tryFails {
		if !w.PruneEdge(tf) {
			in = append(in, tf)
		}
	}
	l.tryFails = l.tryFails[:0]
	id := w.Record(trace.Event{Kind: trace.KindLockRel, Res: l.id, Arg: *l.ver}, in)
	l.lastRel = id
	l.lastChain = id
	l.relVC = w.VC().Clone()
	l.holderAcq = trace.EventID{}
	l.meta.Unlock()
	l.real.Unlock()
}

func (l *Lock) tryLockRecord(w *sched.Worker) bool {
	ok := l.real.TryLock()
	l.meta.Lock()
	l.refreshLocked()
	if ok {
		*l.ver++
		src := l.lastRel
		if l.rt.TotalOrderTryFail && l.lastChain != (trace.EventID{}) {
			src = l.lastChain
		}
		var in []trace.EventID
		if !w.PruneEdge(src) {
			in = append(in, src)
		}
		w.JoinVC(l.relVC)
		l.holderAcq = w.Record(trace.Event{Kind: trace.KindTryAcq, Res: l.id, Arg: *l.ver}, in)
		l.lastChain = l.holderAcq
	} else if l.rt.TotalOrderTryFail {
		// Ablation mode (Fig. 4 left): chain the failed TryLock into the
		// resource's total order — it waits for the previous chain event
		// and everything after waits for it, sacrificing replay
		// parallelism.
		src := l.lastChain
		if src == (trace.EventID{}) {
			src = l.holderAcq
		}
		var in []trace.EventID
		if !w.PruneEdge(src) {
			in = append(in, src)
		}
		id := w.Record(trace.Event{Kind: trace.KindTryFail, Res: l.id, Arg: *l.ver}, in)
		l.lastChain = id
		l.tryFails = append(l.tryFails, id)
	} else {
		// Failed TryLock: totally ordering it with all lock events would
		// cost replay parallelism (Fig. 4 left); instead it is pinned
		// between the holder's acquire (edge recorded here) and the
		// holder's release (edge recorded at Unlock, via tryFails). It
		// does not bump the version: concurrent failures commute.
		src := l.holderAcq
		if src == (trace.EventID{}) {
			// The holder is a native-mode reader (hybrid execution):
			// order after the last recorded release instead.
			src = l.lastRel
		}
		var in []trace.EventID
		if !w.PruneEdge(src) {
			in = append(in, src)
		}
		id := w.Record(trace.Event{Kind: trace.KindTryFail, Res: l.id, Arg: *l.ver}, in)
		l.tryFails = append(l.tryFails, id)
	}
	l.meta.Unlock()
	return ok
}

func (l *Lock) lockReplay(w *sched.Worker) bool {
	ev, id, ok := expectEvent(w, trace.KindLockAcq, l.id, l.name)
	if !ok {
		return false
	}
	if !waitSources(w, id) {
		return false
	}
	// The recorded order is now satisfied; the real lock may still be held
	// transiently by a native-mode reader, in which case Lock blocks until
	// it restores the state (§4.2, hybrid execution).
	l.real.Lock()
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	checkVersion(w, ev, id, *l.ver, l.name)
	l.holderAcq = id
	l.meta.Unlock()
	w.Runtime().Replayer().Commit(w.ID())
	return true
}

func (l *Lock) unlockReplay(w *sched.Worker) bool {
	ev, id, ok := expectEvent(w, trace.KindLockRel, l.id, l.name)
	if !ok {
		return false
	}
	// The release waits for the recorded failed TryLocks so they observe
	// the lock still held (Fig. 4 edges X, D, Z).
	if !waitSources(w, id) {
		return false
	}
	l.meta.Lock()
	l.refreshLocked()
	*l.ver++
	checkVersion(w, ev, id, *l.ver, l.name)
	l.lastRel = id
	l.holderAcq = trace.EventID{}
	l.tryFails = l.tryFails[:0]
	l.meta.Unlock()
	l.real.Unlock()
	w.Runtime().Replayer().Commit(w.ID())
	return true
}

// tryLockReplay returns (result, ok); ok=false means aborted.
func (l *Lock) tryLockReplay(w *sched.Worker) (bool, bool) {
	ev, id, ok := expectOneOf(w, l.id, l.name, trace.KindTryAcq, trace.KindTryFail)
	if !ok {
		return false, false
	}
	if !waitSources(w, id) {
		return false, false
	}
	l.meta.Lock()
	l.refreshLocked()
	if ev.Kind == trace.KindTryAcq {
		// A successful TryLock is an acquire; the recorded order guarantees
		// availability, modulo transient native readers, so spin briefly.
		l.meta.Unlock()
		for !l.real.TryLock() {
			w.Runtime().Env.Sleep(0) // yield: a native reader holds it
		}
		l.meta.Lock()
		*l.ver++
		checkVersion(w, ev, id, *l.ver, l.name)
		l.holderAcq = id
		l.meta.Unlock()
	} else {
		// A failed TryLock leaves the lock untouched: reproduce the result
		// without touching the real lock (the recorded edges already pin
		// it between the holder's acquire and release).
		checkVersion(w, ev, id, *l.ver, l.name)
		l.tryFails = append(l.tryFails, id)
		l.meta.Unlock()
	}
	w.Runtime().Replayer().Commit(w.ID())
	return ev.Kind == trace.KindTryAcq, true
}
