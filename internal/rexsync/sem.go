package rexsync

import (
	"rex/internal/env"
	"rex/internal/sched"
	"rex/internal/trace"
	"rex/internal/vclock"
)

// semCore is a counting semaphore built from env primitives.
type semCore struct {
	mu    env.Mutex
	cond  env.Cond
	count int
}

func newSemCore(e env.Env, n int) *semCore {
	c := &semCore{mu: e.NewMutex(), count: n}
	c.cond = e.NewCond(c.mu)
	return c
}

func (c *semCore) Acquire() {
	c.mu.Lock()
	for c.count == 0 {
		c.cond.Wait()
	}
	c.count--
	c.mu.Unlock()
}

func (c *semCore) Release() {
	c.mu.Lock()
	c.count++
	c.cond.Signal()
	c.mu.Unlock()
}

// Semaphore is Rex's counting semaphore. Its events are chained in a
// per-resource total order (each operation records an edge from the
// previous one). This is coarser than the ground-truth partial order —
// acquires that consumed different units commute — but semaphores are rare
// in the paper's applications (Table 1 lists none) and the total chain
// keeps version checking exact.
type Semaphore struct {
	rt   *sched.Runtime
	id   uint32
	name string
	real *semCore
	meta env.Mutex

	epoch  uint64
	ver    *uint64
	last   trace.EventID
	lastVC vclock.VC
}

// NewSemaphore creates a semaphore with n initial units.
func NewSemaphore(rt *sched.Runtime, name string, n int) *Semaphore {
	id := rt.RegisterResource(name)
	return &Semaphore{
		rt:   rt,
		id:   id,
		name: name,
		ver:  rt.Version(id),
		real: newSemCore(rt.Env, n),
		meta: rt.Env.NewMutex(),
	}
}

// ID returns the semaphore's resource id.
func (s *Semaphore) ID() uint32 { return s.id }

func (s *Semaphore) refreshLocked() {
	if e := s.rt.Epoch(); s.epoch != e {
		s.epoch = e
		s.lastVC = nil
	}
}

// Acquire takes one unit, blocking until available. Like a lock acquire,
// the real operation happens first and the event is recorded after, so the
// event order matches the real availability order.
func (s *Semaphore) Acquire(w *sched.Worker) {
	s.op(w, trace.KindSemAcq, s.real.Acquire, true)
}

// Release returns one unit. Like a lock release, the event is recorded
// before the real operation, so any acquire it enables chains after it.
// (The opposite order would let the woken acquirer record first, producing
// a trace whose replay deadlocks.)
func (s *Semaphore) Release(w *sched.Worker) {
	s.op(w, trace.KindSemRel, s.real.Release, false)
}

func (s *Semaphore) op(w *sched.Worker, kind trace.Kind, realOp func(), realFirst bool) {
	for {
		switch w.Mode() {
		case sched.ModeNative:
			realOp()
			return
		case sched.ModeRecord:
			if realFirst {
				realOp()
			}
			s.meta.Lock()
			s.refreshLocked()
			*s.ver++
			var in []trace.EventID
			if !w.PruneEdge(s.last) {
				in = append(in, s.last)
			}
			w.JoinVC(s.lastVC)
			s.last = w.Record(trace.Event{Kind: kind, Res: s.id, Arg: *s.ver}, in)
			s.lastVC = w.VC().Clone()
			s.meta.Unlock()
			if !realFirst {
				realOp()
			}
			return
		default:
			ev, id, ok := expectEvent(w, kind, s.id, s.name)
			if !ok {
				redoAfterAbort(w)
				continue
			}
			if !waitSources(w, id) {
				redoAfterAbort(w)
				continue
			}
			if realFirst {
				realOp()
			}
			s.meta.Lock()
			s.refreshLocked()
			*s.ver++
			checkVersion(w, ev, id, *s.ver, s.name)
			s.last = id
			s.meta.Unlock()
			if !realFirst {
				realOp()
			}
			w.Runtime().Replayer().Commit(w.ID())
			return
		}
	}
}
