package rexsync

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rex/internal/sched"
	"rex/internal/trace"
)

// TestQuickRandomScriptsRecordReplayEquivalence is the package's core
// property: for ANY randomly generated concurrent program over the Rex
// primitives, replaying the recorded trace on fresh state reproduces the
// recorded execution's final state exactly (§2.2's determinism property).
func TestQuickRandomScriptsRecordReplayEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		nWorkers := 2 + int(uint64(seed)%4) // 2..5
		scripts := randomScripts(seed, nWorkers)
		tr, want, _ := recordRun(t, 4, nWorkers, scripts)
		if !tr.IsConsistent(tr.Cut()) {
			t.Logf("seed %d: inconsistent trace at rest", seed)
			return false
		}
		got := replayRun(t, 4, nWorkers, tr, scripts)
		if got != want {
			t.Logf("seed %d diverged:\nrecord: %s\nreplay: %s", seed, want, got)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randomScripts builds one deterministic random op sequence per worker
// over the shared world's primitives.
func randomScripts(seed int64, nWorkers int) []script {
	scripts := make([]script, nWorkers)
	for i := range scripts {
		id := i
		scripts[i] = func(w *sched.Worker, wl *world) {
			// Fresh deterministic randomness per invocation: the same
			// script must behave identically when re-run for replay.
			rng := rand.New(rand.NewSource(seed ^ int64(id)<<16))
			ops := 10 + rng.Intn(25)
			held := map[int]bool{} // which of lockA(0)/lockB(1) we hold
			rw := 0                // 0 none, 1 read, 2 write
			semHeld := 0
			locks := []*Lock{wl.lockA, wl.lockB}
			for j := 0; j < ops; j++ {
				switch rng.Intn(10) {
				case 0, 1: // mutex lock/unlock pair around a mutation
					k := rng.Intn(2)
					if !held[k] {
						locks[k].Lock(w)
						wl.log = append(wl.log, fmt.Sprintf("%d.%d", id, j))
						locks[k].Unlock(w)
					}
				case 2: // trylock
					k := rng.Intn(2)
					if !held[k] && locks[k].TryLock(w) {
						wl.counter++
						locks[k].Unlock(w)
					}
				case 3: // rwlock read
					if rw == 0 {
						wl.rw.RLock(w)
						v := wl.shared
						wl.rw.RUnlock(w)
						wl.lockB.Lock(w)
						wl.reads = append(wl.reads, v)
						wl.lockB.Unlock(w)
					}
				case 4: // rwlock write
					if rw == 0 {
						wl.rw.Lock(w)
						wl.shared++
						wl.rw.Unlock(w)
					}
				case 5: // semaphore
					if semHeld == 0 {
						wl.sem.Acquire(w)
						wl.sem.Release(w)
					}
				case 6: // cond-guarded queue producer
					wl.lockA.Lock(w)
					wl.queue = append(wl.queue, id*100+j)
					wl.cond.Signal(w)
					wl.lockA.Unlock(w)
				case 7: // cond-guarded queue consumer (non-blocking check)
					wl.lockA.Lock(w)
					if len(wl.queue) > 0 {
						wl.queue = wl.queue[1:]
					}
					wl.lockA.Unlock(w)
				case 8: // recorded nondeterministic value
					// Draw from the script rng BEFORE Value: replay skips
					// the compute closure, and the script's control-flow
					// randomness must advance identically either way.
					v0 := rng.Uint64()
					v := Value(w, 3, func() uint64 { return v0 })
					wl.lockB.Lock(w)
					wl.counter += int(v % 7)
					wl.lockB.Unlock(w)
				case 9: // compute to shift interleavings
					w.Runtime().Env.Compute(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
		}
	}
	return scripts
}

// TestQuickDeltaSplitsReplayIdentically: splitting the same recording into
// a different number of deltas must not change replay behaviour (the agree
// stage may cut proposals anywhere).
func TestQuickDeltaSplitsReplayIdentically(t *testing.T) {
	scripts := randomScripts(1234, 3)
	tr, want, _ := recordRun(t, 4, 3, scripts)
	_ = tr
	// Re-record collecting multiple deltas mid-run is covered by
	// TestPromotionMidStream; here we verify replay from a re-encoded
	// trace: encode the full trace as one delta, decode, replay.
	d := &trace.Delta{Base: make(trace.Cut, 3), Threads: tr.Threads, Reqs: tr.Reqs}
	decoded, err := trace.DecodeDeltaBytes(d.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	tr2 := trace.New(3)
	if err := tr2.Apply(decoded); err != nil {
		t.Fatal(err)
	}
	got := replayRun(t, 4, 3, tr2, scripts)
	if got != want {
		t.Fatalf("replay from re-encoded trace diverged:\n%s\n%s", want, got)
	}
}
