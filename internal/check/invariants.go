package check

import (
	"bytes"
	"fmt"
	"sort"
)

// ChosenLog is one replica's view of the committed instance sequence:
// instances below Base were compacted after a checkpoint; Vals[k] is the
// chosen value of instance Base+k.
type ChosenLog struct {
	Replica int
	Base    uint64
	Vals    [][]byte
}

// CheckPrefix verifies the prefix property (§2 correctness contract):
// every pair of replicas must agree byte-for-byte on the instances both
// retain. It returns one violation description per disagreeing pair.
func CheckPrefix(logs []ChosenLog) []string {
	var violations []string
	for i := 0; i < len(logs); i++ {
		for j := i + 1; j < len(logs); j++ {
			a, b := logs[i], logs[j]
			lo := a.Base
			if b.Base > lo {
				lo = b.Base
			}
			hi := a.Base + uint64(len(a.Vals))
			if e := b.Base + uint64(len(b.Vals)); e < hi {
				hi = e
			}
			for k := lo; k < hi; k++ {
				if !bytes.Equal(a.Vals[k-a.Base], b.Vals[k-b.Base]) {
					violations = append(violations, fmt.Sprintf(
						"prefix violation: replicas %d and %d disagree on chosen instance %d (%d vs %d bytes)",
						a.Replica, b.Replica, k, len(a.Vals[k-a.Base]), len(b.Vals[k-b.Base])))
					break
				}
			}
		}
	}
	return violations
}

// StateAgreement compares serialized application states (WriteCheckpoint
// bytes) captured after the cluster quiesced; every replica must hold an
// identical state. It returns one violation per replica diverging from
// the lowest-numbered one.
func StateAgreement(states map[int]string) []string {
	if len(states) < 2 {
		return nil
	}
	ids := make([]int, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ref := ids[0]
	var violations []string
	for _, id := range ids[1:] {
		if states[id] != states[ref] {
			violations = append(violations, fmt.Sprintf(
				"state divergence: replica %d differs from replica %d (%d vs %d bytes) at offset %d: %s vs %s",
				id, ref, len(states[id]), len(states[ref]),
				diffOffset(states[id], states[ref]),
				diffWindow(states[id], states[ref]), diffWindow(states[ref], states[id])))
		}
	}
	return violations
}

// diffOffset returns the index of the first byte where a and b differ.
func diffOffset(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// diffWindow quotes a's bytes around the first difference with b.
func diffWindow(a, b string) string {
	off := diffOffset(a, b)
	lo, hi := off-8, off+24
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("[%d:%d]=%q", lo, hi, a[lo:hi])
}
