package check

import (
	"fmt"

	"rex/internal/wire"
)

// The hashdb and memcache request codecs agree: op byte (1=set, 2=get,
// 3=del), key string, optional value bytes. Sets and deletes answer
// []byte{1}; gets answer Bool(exists) + BytesVal(value).
const (
	kvOpSet byte = 1
	kvOpGet byte = 2
	kvOpDel byte = 3
)

func kvDecode(input []byte) (op byte, key string, val []byte) {
	d := wire.NewDecoder(input)
	op = d.Byte()
	key = d.String()
	if op == kvOpSet {
		val = d.BytesVal()
	}
	return op, key, val
}

type kvState struct {
	present bool
	val     string
}

func kvGetResp(present bool, val string) string {
	e := wire.NewEncoder(nil)
	e.Bool(present)
	e.BytesVal([]byte(val))
	return string(e.Bytes())
}

// KVModel is the per-key register model shared by hashdb and memcache.
// allowMiss forgives gets that observe a missing key even though the
// model says it is present — memcache's LRU eviction can remove any key
// as a side effect of inserting another, which per-key partitioning
// cannot see. A present key returning a stale value is still a
// violation.
func KVModel(allowMiss bool) Model {
	return Model{
		Partition: func(ops []Op) [][]Op {
			byKey := make(map[string][]Op)
			var order []string
			for _, op := range ops {
				_, key, _ := kvDecode(op.Input)
				if _, ok := byKey[key]; !ok {
					order = append(order, key)
				}
				byKey[key] = append(byKey[key], op)
			}
			parts := make([][]Op, 0, len(order))
			for _, k := range order {
				parts = append(parts, byKey[k])
			}
			return parts
		},
		Init: func() any { return kvState{} },
		Step: func(state any, input, output []byte, unknown bool) (any, bool) {
			s := state.(kvState)
			op, _, val := kvDecode(input)
			switch op {
			case kvOpSet:
				next := kvState{present: true, val: string(val)}
				return next, unknown || string(output) == "\x01"
			case kvOpDel:
				next := kvState{}
				return next, unknown || string(output) == "\x01"
			case kvOpGet:
				if unknown {
					return s, true
				}
				if string(output) == kvGetResp(s.present, s.val) {
					return s, true
				}
				if allowMiss && s.present && string(output) == kvGetResp(false, "") {
					return s, true
				}
				return s, false
			}
			return s, false
		},
		Hash: func(state any) string {
			s := state.(kvState)
			return fmt.Sprintf("%t|%s", s.present, s.val)
		},
		DropUnknown: func(input []byte) bool {
			op, _, _ := kvDecode(input)
			return op == kvOpGet
		},
	}
}

// Lockserver request codec: op byte (1=renew, 2=create, 3=update,
// 4=info), name string, client uvarint, content bytes for create/update.
const (
	lsOpRenew  byte = 1
	lsOpCreate byte = 2
	lsOpUpdate byte = 3
	lsOpInfo   byte = 4
)

func lsDecode(input []byte) (op byte, name string, client uint64) {
	d := wire.NewDecoder(input)
	op = d.Byte()
	name = d.String()
	client = d.Uvarint()
	return op, name, client
}

type lockState struct {
	exists bool
	holder uint64
}

// LockModel is the per-name ownership model for the lock server. It
// tracks existence and the holder but not lease expiry (a function of
// virtual time the checker cannot see), so an update by a non-holder
// legally returns either "held by someone else" or a takeover; the model
// follows the observed output. Renew and create are deterministic given
// ownership, which is where replay divergence would surface.
func LockModel() Model {
	return Model{
		Partition: func(ops []Op) [][]Op {
			byName := make(map[string][]Op)
			var order []string
			for _, op := range ops {
				_, name, _ := lsDecode(op.Input)
				if _, ok := byName[name]; !ok {
					order = append(order, name)
				}
				byName[name] = append(byName[name], op)
			}
			parts := make([][]Op, 0, len(order))
			for _, n := range order {
				parts = append(parts, byName[n])
			}
			return parts
		},
		Init: func() any { return lockState{} },
		Step: func(state any, input, output []byte, unknown bool) (any, bool) {
			s := state.(lockState)
			op, _, client := lsDecode(input)
			switch op {
			case lsOpRenew:
				want := byte(0)
				if s.exists && s.holder == client {
					want = 1
				}
				return s, unknown || (len(output) == 1 && output[0] == want)
			case lsOpCreate:
				if s.exists {
					return s, unknown || (len(output) == 1 && output[0] == 0)
				}
				next := lockState{exists: true, holder: client}
				return next, unknown || (len(output) == 1 && output[0] == 1)
			case lsOpUpdate:
				if !s.exists {
					return s, unknown || (len(output) == 1 && output[0] == 0)
				}
				if s.holder == client {
					return s, unknown || (len(output) == 1 && output[0] == 1)
				}
				// Non-holder: takeover iff the lease had expired.
				if unknown {
					return lockState{exists: true, holder: client}, true
				}
				if len(output) != 1 {
					return s, false
				}
				switch output[0] {
				case 1:
					return lockState{exists: true, holder: client}, true
				case 2:
					return s, true
				}
				return s, false
			case lsOpInfo:
				if unknown {
					return s, true
				}
				d := wire.NewDecoder(output)
				exists := d.Bool()
				if d.Err() != nil || exists != s.exists {
					return s, false
				}
				if exists && d.Uvarint() != s.holder {
					return s, false
				}
				return s, d.Err() == nil
			}
			return s, false
		},
		Hash: func(state any) string {
			s := state.(lockState)
			return fmt.Sprintf("%t|%d", s.exists, s.holder)
		},
		DropUnknown: func(input []byte) bool {
			op, _, _ := lsDecode(input)
			return op == lsOpInfo
		},
	}
}
