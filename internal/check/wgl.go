package check

import (
	"encoding/binary"
	"sort"
	"time"
)

// Model is a sequential specification used by the linearizability
// checker. States are opaque to the checker; it only steps and hashes
// them.
type Model struct {
	// Partition splits a history into independently checkable pieces
	// (typically per key). Nil checks the whole history as one piece.
	Partition func(ops []Op) [][]Op
	// Init returns one partition's initial state.
	Init func() any
	// Step applies an operation's input to a state and returns the
	// successor state plus whether the observed output is legal there.
	// unknown is true for timed-out operations: any outcome must be
	// accepted, and the returned successor is the executed-op state (the
	// checker covers the never-executed case by deferring the op past
	// every observed operation).
	Step func(state any, input, output []byte, unknown bool) (any, bool)
	// Hash serializes a state for memoization. States that hash equal
	// must be behaviourally identical.
	Hash func(state any) string
	// DropUnknown reports whether a timed-out operation with this input
	// can be discarded outright (sound for pure reads: whether or not
	// they executed, no later state is affected).
	DropUnknown func(input []byte) bool
}

// Result summarizes a linearizability check.
type Result struct {
	Ok         bool
	Undecided  bool // step budget exhausted before a verdict
	Ops        int  // operations checked (after dropping unknown reads)
	Dropped    int  // timed-out reads discarded
	Partitions int
}

// DefaultBudget bounds the checker's worst-case backtracking across all
// partitions of one history.
const DefaultBudget = 20_000_000

// CheckLinearizable decides whether the history is linearizable with
// respect to the model. budget <= 0 selects DefaultBudget.
func CheckLinearizable(m Model, ops []Op, budget int64) Result {
	if budget <= 0 {
		budget = DefaultBudget
	}
	res := Result{Ok: true}
	// Drop timed-out operations the model declares side-effect free.
	kept := make([]Op, 0, len(ops))
	for _, op := range ops {
		if !op.Ok && m.DropUnknown != nil && m.DropUnknown(op.Input) {
			res.Dropped++
			continue
		}
		kept = append(kept, op)
	}
	res.Ops = len(kept)
	parts := [][]Op{kept}
	if m.Partition != nil {
		parts = m.Partition(kept)
	}
	res.Partitions = len(parts)
	// Check small partitions first: cheap verdicts land before any
	// budget-hungry one runs.
	sort.Slice(parts, func(i, j int) bool { return len(parts[i]) < len(parts[j]) })
	for _, p := range parts {
		ok, undecided := checkPartition(m, p, &budget)
		if undecided {
			res.Undecided = true
		}
		if !ok {
			res.Ok = false
			return res
		}
	}
	return res
}

// entry is one endpoint (call or return) of an operation in the
// doubly-linked scan list of the WGL search.
type entry struct {
	id         int
	call       bool
	time       time.Duration
	op         *Op
	match      *entry // a call's return entry (always present)
	prev, next *entry
}

// lift removes the entry and its matching return from the list once the
// operation is tentatively linearized.
func (e *entry) lift() {
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

// unlift reinserts the pair on backtrack (return first, then call, the
// reverse of lift).
func (e *entry) unlift() {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }
func (b bitset) key() string {
	buf := make([]byte, 8*len(b))
	for i, w := range b {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return string(buf)
}

// checkPartition runs the WGL search over one partition: scan the
// time-ordered entry list, tentatively linearizing calls whose output the
// model accepts, backtracking when a return is reached before its call
// was linearized, and memoizing (linearized-set, state) pairs.
func checkPartition(m Model, ops []Op, budget *int64) (ok, undecided bool) {
	n := len(ops)
	if n == 0 {
		return true, false
	}
	entries := make([]*entry, 0, 2*n)
	for i := range ops {
		op := &ops[i]
		call := &entry{id: i, call: true, time: op.Begin, op: op}
		ret := &entry{id: i, time: op.End, op: op}
		call.match = ret
		entries = append(entries, call, ret)
	}
	// Sort by time; at equal times calls precede returns, so operations
	// meeting at a timestamp count as concurrent (the permissive — and
	// sound — reading of the real-time order).
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].time != entries[j].time {
			return entries[i].time < entries[j].time
		}
		return entries[i].call && !entries[j].call
	})
	head := &entry{}
	prev := head
	for _, e := range entries {
		prev.next = e
		e.prev = prev
		prev = e
	}

	type frame struct {
		e     *entry
		state any
	}
	var stack []frame
	state := m.Init()
	linearized := newBitset(n)
	cache := make(map[string]struct{})
	e := head.next
	for head.next != nil {
		*budget--
		if *budget <= 0 {
			return true, true
		}
		if e == nil {
			// Scanned past the last entry without linearizing everything.
			if len(stack) == 0 {
				return false, false
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			e = top.e
			state = top.state
			linearized.clear(e.id)
			e.unlift()
			e = e.next
			continue
		}
		if !e.call {
			// A return whose call was not linearized: backtrack.
			if len(stack) == 0 {
				return false, false
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			e = top.e
			state = top.state
			linearized.clear(e.id)
			e.unlift()
			e = e.next
			continue
		}
		newState, legal := m.Step(state, e.op.Input, e.op.Output, !e.op.Ok)
		if legal {
			linearized.set(e.id)
			key := linearized.key() + "|" + m.Hash(newState)
			if _, seen := cache[key]; !seen {
				cache[key] = struct{}{}
				stack = append(stack, frame{e: e, state: state})
				state = newState
				e.lift()
				e = head.next
				continue
			}
			linearized.clear(e.id)
		}
		e = e.next
	}
	return true, false
}
