package check

import (
	"strings"
	"testing"
)

func TestSessionReadsClean(t *testing.T) {
	events := []SessionEvent{
		{Client: 1, Kind: SessionRead, Version: 0, Level: "session"},
		{Client: 1, Kind: SessionWrite, Version: 1},
		{Client: 2, Kind: SessionWrite, Version: 1},
		{Client: 1, Kind: SessionRead, Version: 1, Level: "session"},
		{Client: 1, Kind: SessionWrite, Version: 2},
		// A stale write that never confirmed may leave reads ahead of the
		// floor; observing version 3 before writing it is fine too (late
		// commit of an unconfirmed write).
		{Client: 1, Kind: SessionRead, Version: 3, Level: "linearizable"},
		{Client: 2, Kind: SessionRead, Version: 1, Level: "session"},
	}
	if v := CheckSessionReads(events); len(v) != 0 {
		t.Fatalf("clean history flagged: %v", v)
	}
}

func TestSessionReadsCatchesStaleRead(t *testing.T) {
	events := []SessionEvent{
		{Client: 1, Kind: SessionWrite, Version: 5},
		{Client: 1, Kind: SessionRead, Version: 4, Level: "session"},
	}
	v := CheckSessionReads(events)
	if len(v) != 1 || !strings.Contains(v[0], "read-your-writes") {
		t.Fatalf("stale read not flagged correctly: %v", v)
	}
}

func TestSessionReadsCatchesNonMonotonicRead(t *testing.T) {
	events := []SessionEvent{
		{Client: 1, Kind: SessionRead, Version: 7, Level: "session"},
		{Client: 1, Kind: SessionRead, Version: 6, Level: "session"},
	}
	v := CheckSessionReads(events)
	if len(v) != 1 || !strings.Contains(v[0], "monotonic reads") {
		t.Fatalf("non-monotonic read not flagged correctly: %v", v)
	}
}

func TestSessionReadsPerClientIsolation(t *testing.T) {
	// Client 2's low version must not trip client 1's floor.
	events := []SessionEvent{
		{Client: 1, Kind: SessionWrite, Version: 9},
		{Client: 2, Kind: SessionRead, Version: 0, Level: "eventual"},
		{Client: 1, Kind: SessionRead, Version: 9, Level: "session"},
	}
	if v := CheckSessionReads(events); len(v) != 0 {
		t.Fatalf("cross-client interference: %v", v)
	}
}
