// Package check verifies the correctness contract the chaos engine
// stresses: client operations are recorded as a concurrent history and
// tested for linearizability against a sequential model of the
// application (a WGL-style search with memoization, per-key
// partitioning, and sound handling of timed-out operations), and the
// replica group's structure is checked directly — the prefix property
// across committed instances and cross-replica state agreement after
// quiescence.
package check

import (
	"math"
	"sync"
	"time"
)

// Unknown marks an operation whose completion was never observed: it may
// take effect at any point after its invocation, or never.
const Unknown = time.Duration(math.MaxInt64)

// Op is one client operation in a concurrent history.
type Op struct {
	Client    uint64
	Input     []byte
	Output    []byte        // response bytes; nil if the op timed out
	Begin     time.Duration // invocation time
	End       time.Duration // response time, or Unknown
	Ok        bool          // a response was observed
	discarded bool          // provably never executed; excluded from Ops
}

// History records operations concurrently. It implements
// cluster.HistoryRecorder; the now function supplies (virtual) time.
type History struct {
	mu  sync.Mutex
	now func() time.Duration
	ops []Op
}

// NewHistory returns an empty history whose timestamps come from now.
func NewHistory(now func() time.Duration) *History {
	return &History{now: now}
}

// Invoke records an operation's start and returns its id.
func (h *History) Invoke(client uint64, input []byte) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := uint64(len(h.ops))
	h.ops = append(h.ops, Op{
		Client: client,
		Input:  append([]byte(nil), input...),
		Begin:  h.now(),
		End:    Unknown,
	})
	return id
}

// Return records a successful completion.
func (h *History) Return(id uint64, output []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	op := &h.ops[id]
	op.Output = append([]byte(nil), output...)
	op.End = h.now()
	op.Ok = true
}

// Timeout marks the operation's outcome as unknown. Invoke already set
// End to Unknown, so this is a no-op kept for interface clarity.
func (h *History) Timeout(id uint64) {}

// Discard removes an operation whose every attempt was answered with a
// definite did-not-execute NACK (shed, deadline-expired, not-primary).
// Unlike Timeout, which leaves the op haunting the checker as
// maybe-takes-effect-anytime, a discarded op is dropped from the
// history entirely — under saturating overload most submissions are
// shed, and keeping them as unknowns would blow up the WGL search.
// Callers must be certain: discarding an op that did execute makes the
// checker unsound.
func (h *History) Discard(id uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ops[id].discarded = true
}

// Ops returns a snapshot of the recorded history. Operations that never
// completed keep End == Unknown; discarded operations are excluded.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Op, 0, len(h.ops))
	for _, op := range h.ops {
		if !op.discarded {
			out = append(out, op)
		}
	}
	return out
}

// Len reports the number of recorded operations (discarded included —
// it is an id space, not a live count).
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}
