package check

import "fmt"

// Session-consistency checking. Each client writes strictly increasing
// versions to its own private key and records, in its own program order,
// every confirmed write and every session-level (or stronger) read with
// the version it observed. Two invariants must hold per client:
//
//   - Read-your-writes: a read observes a version at least as new as the
//     client's last confirmed write. (Writes whose outcome was never
//     observed don't raise the floor — they may commit late or never —
//     but versions only grow, so a late commit can only over-deliver.)
//   - Monotonic reads: versions observed by successive reads never go
//     backwards, even when the reads land on different replicas.

// SessionEventKind distinguishes the two event types.
type SessionEventKind uint8

const (
	// SessionWrite is a confirmed write of Version to the client's key.
	SessionWrite SessionEventKind = iota
	// SessionRead is a completed read that observed Version (0 = key
	// absent).
	SessionRead
)

// SessionEvent is one entry in a client's program-order event sequence.
type SessionEvent struct {
	Client  uint64
	Kind    SessionEventKind
	Version uint64
	Level   string // consistency level of a read, for diagnostics
}

// CheckSessionReads verifies read-your-writes and monotonic reads over
// per-client event sequences. Events for one client must appear in that
// client's program order; different clients' events may interleave
// arbitrarily (the checker partitions by Client).
func CheckSessionReads(events []SessionEvent) []string {
	type state struct {
		written  uint64 // last confirmed write (floor for reads)
		observed uint64 // highest version any read returned
	}
	clients := make(map[uint64]*state)
	var violations []string
	for i, ev := range events {
		st := clients[ev.Client]
		if st == nil {
			st = &state{}
			clients[ev.Client] = st
		}
		switch ev.Kind {
		case SessionWrite:
			if ev.Version <= st.written {
				violations = append(violations, fmt.Sprintf(
					"event %d: client %d wrote version %d after confirming %d (driver bug: versions must increase)",
					i, ev.Client, ev.Version, st.written))
			}
			st.written = ev.Version
		case SessionRead:
			if ev.Version < st.written {
				violations = append(violations, fmt.Sprintf(
					"event %d: client %d %s read observed version %d after its own confirmed write of %d (read-your-writes violated)",
					i, ev.Client, ev.Level, ev.Version, st.written))
			}
			if ev.Version < st.observed {
				violations = append(violations, fmt.Sprintf(
					"event %d: client %d %s read observed version %d after an earlier read observed %d (monotonic reads violated)",
					i, ev.Client, ev.Level, ev.Version, st.observed))
			}
			if ev.Version > st.observed {
				st.observed = ev.Version
			}
		}
	}
	return violations
}
