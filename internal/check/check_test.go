package check

import (
	"testing"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/apps/lockserver"
	"rex/internal/wire"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func okOp(client uint64, in, out []byte, begin, end int) Op {
	return Op{Client: client, Input: in, Output: out, Begin: ms(begin), End: ms(end), Ok: true}
}

func lostOp(client uint64, in []byte, begin int) Op {
	return Op{Client: client, Input: in, Begin: ms(begin), End: Unknown}
}

func getResp(ok bool, val []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Bool(ok)
	e.BytesVal(val)
	return e.Bytes()
}

func TestKVSequentialOK(t *testing.T) {
	ops := []Op{
		okOp(1, hashdb.SetReq("a", []byte("x")), []byte{1}, 0, 10),
		okOp(1, hashdb.GetReq("a"), getResp(true, []byte("x")), 20, 30),
		okOp(1, hashdb.DelReq("a"), []byte{1}, 40, 50),
		okOp(1, hashdb.GetReq("a"), getResp(false, nil), 60, 70),
		okOp(2, hashdb.SetReq("b", []byte("y")), []byte{1}, 0, 10),
		okOp(2, hashdb.GetReq("b"), getResp(true, []byte("y")), 20, 30),
	}
	res := CheckLinearizable(KVModel(false), ops, 0)
	if !res.Ok || res.Undecided {
		t.Fatalf("expected linearizable, got %+v", res)
	}
	if res.Partitions != 2 {
		t.Fatalf("expected 2 partitions, got %d", res.Partitions)
	}
}

func TestKVStaleReadRejected(t *testing.T) {
	// Write of "new" acknowledged strictly before the read begins, yet the
	// read observes the old value: not linearizable.
	ops := []Op{
		okOp(1, hashdb.SetReq("a", []byte("old")), []byte{1}, 0, 10),
		okOp(1, hashdb.SetReq("a", []byte("new")), []byte{1}, 20, 30),
		okOp(2, hashdb.GetReq("a"), getResp(true, []byte("old")), 40, 50),
	}
	res := CheckLinearizable(KVModel(false), ops, 0)
	if res.Ok {
		t.Fatalf("expected violation, got %+v", res)
	}
}

func TestKVConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping writes; a later read may observe either one.
	for _, winner := range []string{"x", "y"} {
		ops := []Op{
			okOp(1, hashdb.SetReq("a", []byte("x")), []byte{1}, 0, 30),
			okOp(2, hashdb.SetReq("a", []byte("y")), []byte{1}, 10, 40),
			okOp(3, hashdb.GetReq("a"), getResp(true, []byte(winner)), 50, 60),
		}
		res := CheckLinearizable(KVModel(false), ops, 0)
		if !res.Ok {
			t.Fatalf("winner %q should linearize, got %+v", winner, res)
		}
	}
	// A value nobody wrote is a violation.
	ops := []Op{
		okOp(1, hashdb.SetReq("a", []byte("x")), []byte{1}, 0, 30),
		okOp(3, hashdb.GetReq("a"), getResp(true, []byte("z")), 50, 60),
	}
	if res := CheckLinearizable(KVModel(false), ops, 0); res.Ok {
		t.Fatalf("phantom value accepted: %+v", res)
	}
}

func TestKVUnknownWrite(t *testing.T) {
	// A timed-out write may or may not take effect: reads observing either
	// state are fine, a third value is not.
	base := []Op{
		okOp(1, hashdb.SetReq("a", []byte("v1")), []byte{1}, 0, 10),
		lostOp(2, hashdb.SetReq("a", []byte("v2")), 20),
	}
	for _, seen := range []string{"v1", "v2"} {
		ops := append(append([]Op(nil), base...),
			okOp(3, hashdb.GetReq("a"), getResp(true, []byte(seen)), 100, 110))
		if res := CheckLinearizable(KVModel(false), ops, 0); !res.Ok {
			t.Fatalf("read of %q after lost write should linearize, got %+v", seen, res)
		}
	}
	ops := append(append([]Op(nil), base...),
		okOp(3, hashdb.GetReq("a"), getResp(true, []byte("v3")), 100, 110))
	if res := CheckLinearizable(KVModel(false), ops, 0); res.Ok {
		t.Fatalf("phantom value accepted despite lost write")
	}
}

func TestKVUnknownReadDropped(t *testing.T) {
	ops := []Op{
		okOp(1, hashdb.SetReq("a", []byte("x")), []byte{1}, 0, 10),
		lostOp(2, hashdb.GetReq("a"), 20),
	}
	res := CheckLinearizable(KVModel(false), ops, 0)
	if !res.Ok || res.Dropped != 1 || res.Ops != 1 {
		t.Fatalf("expected dropped unknown read, got %+v", res)
	}
}

func TestKVAllowMiss(t *testing.T) {
	ops := []Op{
		okOp(1, hashdb.SetReq("a", []byte("x")), []byte{1}, 0, 10),
		okOp(2, hashdb.GetReq("a"), getResp(false, nil), 20, 30),
	}
	if res := CheckLinearizable(KVModel(false), ops, 0); res.Ok {
		t.Fatalf("strict model must reject the miss")
	}
	if res := CheckLinearizable(KVModel(true), ops, 0); !res.Ok {
		t.Fatalf("allowMiss model must forgive eviction misses")
	}
	// Even with allowMiss, a stale present value is rejected.
	ops = []Op{
		okOp(1, hashdb.SetReq("a", []byte("x")), []byte{1}, 0, 10),
		okOp(1, hashdb.SetReq("a", []byte("y")), []byte{1}, 20, 30),
		okOp(2, hashdb.GetReq("a"), getResp(true, []byte("x")), 40, 50),
	}
	if res := CheckLinearizable(KVModel(true), ops, 0); res.Ok {
		t.Fatalf("allowMiss model must still reject stale values")
	}
}

func TestLockModel(t *testing.T) {
	// Ownership protocol: client 1 creates, renews; client 2's create
	// fails; after observing a takeover, old renews must fail.
	ops := []Op{
		okOp(1, lockserver.CreateReq("f", 1, nil), []byte{1}, 0, 10),
		okOp(1, lockserver.RenewReq("f", 1), []byte{1}, 20, 30),
		okOp(2, lockserver.CreateReq("f", 2, nil), []byte{0}, 40, 50),
		okOp(2, lockserver.RenewReq("f", 2), []byte{0}, 60, 70),
		okOp(2, lockserver.UpdateReq("f", 2, nil), []byte{1}, 80, 90), // lease expired: takeover
		okOp(1, lockserver.RenewReq("f", 1), []byte{0}, 100, 110),
		okOp(2, lockserver.RenewReq("f", 2), []byte{1}, 120, 130),
	}
	if res := CheckLinearizable(LockModel(), ops, 0); !res.Ok {
		t.Fatalf("lock protocol history should linearize, got %+v", res)
	}
	// Split-brain: both clients observe a successful create of the same
	// name with no delete in between — impossible sequentially.
	ops = []Op{
		okOp(1, lockserver.CreateReq("f", 1, nil), []byte{1}, 0, 10),
		okOp(2, lockserver.CreateReq("f", 2, nil), []byte{1}, 20, 30),
	}
	if res := CheckLinearizable(LockModel(), ops, 0); res.Ok {
		t.Fatalf("double create must be a violation")
	}
	// Renewing a never-created lock cannot succeed.
	ops = []Op{
		okOp(1, lockserver.RenewReq("g", 1), []byte{1}, 0, 10),
	}
	if res := CheckLinearizable(LockModel(), ops, 0); res.Ok {
		t.Fatalf("renew of missing lock must be a violation")
	}
}

func TestCheckPrefix(t *testing.T) {
	logs := []ChosenLog{
		{Replica: 0, Base: 0, Vals: [][]byte{{1}, {2}, {3}}},
		{Replica: 1, Base: 1, Vals: [][]byte{{2}, {3}, {4}}},
		{Replica: 2, Base: 2, Vals: [][]byte{{3}}},
	}
	if v := CheckPrefix(logs); len(v) != 0 {
		t.Fatalf("consistent logs flagged: %v", v)
	}
	logs[1].Vals[1] = []byte{9} // instance 2 now disagrees
	v := CheckPrefix(logs)
	if len(v) != 2 { // pairs (0,1) and (1,2) overlap at instance 2
		t.Fatalf("expected 2 violations, got %v", v)
	}
}

func TestStateAgreement(t *testing.T) {
	if v := StateAgreement(map[int]string{0: "s", 1: "s", 2: "s"}); len(v) != 0 {
		t.Fatalf("agreeing states flagged: %v", v)
	}
	v := StateAgreement(map[int]string{0: "s", 1: "t", 2: "s"})
	if len(v) != 1 {
		t.Fatalf("expected 1 violation, got %v", v)
	}
}

func TestHistoryRecording(t *testing.T) {
	var now time.Duration
	h := NewHistory(func() time.Duration { return now })
	now = ms(1)
	id1 := h.Invoke(7, hashdb.SetReq("k", []byte("v")))
	now = ms(2)
	id2 := h.Invoke(8, hashdb.GetReq("k"))
	now = ms(3)
	h.Return(id1, []byte{1})
	h.Timeout(id2)
	ops := h.Ops()
	if len(ops) != 2 {
		t.Fatalf("expected 2 ops, got %d", len(ops))
	}
	if !ops[0].Ok || ops[0].Begin != ms(1) || ops[0].End != ms(3) || ops[0].Output[0] != 1 {
		t.Fatalf("bad completed op: %+v", ops[0])
	}
	if ops[1].Ok || ops[1].End != Unknown {
		t.Fatalf("bad timed-out op: %+v", ops[1])
	}
	if res := CheckLinearizable(KVModel(false), ops, 0); !res.Ok {
		t.Fatalf("recorded history should linearize, got %+v", res)
	}
}
