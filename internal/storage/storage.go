// Package storage provides the durable state Rex replicas need: an
// append-only record log for the consensus engine (acceptor promises,
// accepted values, chosen values) and a snapshot store for checkpoints
// (§3.3). Both have an in-memory implementation for simulation and tests
// and a file-backed implementation for cmd/rexd.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Log is an append-only record log. Append must be durable before it
// returns (to the level the implementation promises).
type Log interface {
	// Append adds one record.
	Append(rec []byte) error
	// Records returns all records in append order.
	Records() ([][]byte, error)
	// Rewrite atomically replaces the log's contents (compaction).
	Rewrite(recs [][]byte) error
	// Close releases resources.
	Close() error
}

// SnapshotStore persists checkpoint snapshots.
type SnapshotStore interface {
	// Save stores a snapshot for the given checkpoint id, replacing any
	// previous snapshot.
	Save(id uint64, data []byte) error
	// Load returns the most recent snapshot, if any.
	Load() (id uint64, data []byte, ok bool, err error)
}

// MemLog is an in-memory Log.
type MemLog struct {
	mu   sync.Mutex
	recs [][]byte
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, append([]byte(nil), rec...))
	return nil
}

// Records implements Log.
func (l *MemLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Rewrite implements Log.
func (l *MemLog) Rewrite(recs [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = nil
	for _, r := range recs {
		l.recs = append(l.recs, append([]byte(nil), r...))
	}
	return nil
}

// Close implements Log.
func (l *MemLog) Close() error { return nil }

// MemSnapshots is an in-memory SnapshotStore.
type MemSnapshots struct {
	mu   sync.Mutex
	id   uint64
	data []byte
	has  bool
}

// NewMemSnapshots returns an empty in-memory snapshot store.
func NewMemSnapshots() *MemSnapshots { return &MemSnapshots{} }

// Save implements SnapshotStore.
func (s *MemSnapshots) Save(id uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.id = id
	s.data = append([]byte(nil), data...)
	s.has = true
	return nil
}

// Load implements SnapshotStore.
func (s *MemSnapshots) Load() (uint64, []byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.has {
		return 0, nil, false, nil
	}
	return s.id, append([]byte(nil), s.data...), true, nil
}

// FileLog is a file-backed Log. Records are framed as
// [len uint32][crc uint32][payload]; recovery stops at the first torn or
// corrupt frame, which is the expected state after a crash mid-append.
type FileLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	sync bool
}

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("storage: log closed")

// fileSync and dirSync are indirections over fsync so durability-ordering
// tests can observe that a temp file is synced before it is renamed into
// place and that the containing directory is synced after. Production code
// never swaps them.
var (
	fileSync = func(f *os.File) error { return f.Sync() }
	dirSync  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
)

// OpenFileLog opens (creating if needed) a file log. If syncEach is true,
// every Append fsyncs.
func OpenFileLog(path string, syncEach bool) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &FileLog{path: path, f: f, sync: syncEach}, nil
}

// Append implements Log.
func (l *FileLog) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	if l.sync {
		return l.f.Sync()
	}
	return nil
}

// Records implements Log.
func (l *FileLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, ErrClosed
	}
	data, err := os.ReadFile(l.path)
	if err != nil {
		return nil, err
	}
	var recs [][]byte
	for off := 0; off+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) {
			break // torn tail
		}
		body := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(body) != crc {
			break // corrupt tail
		}
		recs = append(recs, append([]byte(nil), body...))
		off += 8 + n
	}
	return recs, nil
}

// Rewrite implements Log: writes a fresh log beside the old one and renames
// it into place, so compaction is crash-atomic.
func (l *FileLog) Rewrite(recs [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
		if _, err := nf.Write(hdr[:]); err != nil {
			nf.Close()
			return err
		}
		if _, err := nf.Write(rec); err != nil {
			nf.Close()
			return err
		}
	}
	if err := fileSync(nf); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return err
	}
	// The rename itself must survive power loss: fsync the directory so the
	// new directory entry is durable before the compacted records are
	// trusted to have replaced the old log.
	if err := dirSync(filepath.Dir(l.path)); err != nil {
		return err
	}
	l.f.Close()
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.f = nil
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		l.f = nil
		return err
	}
	l.f = f
	return nil
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// FileSnapshots stores snapshots as files in a directory, one per
// checkpoint, keeping only the latest.
type FileSnapshots struct {
	mu  sync.Mutex
	dir string
}

// NewFileSnapshots returns a snapshot store rooted at dir (created if
// needed).
func NewFileSnapshots(dir string) (*FileSnapshots, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileSnapshots{dir: dir}, nil
}

// Save implements SnapshotStore. The snapshot bytes are fsynced to a temp
// file before the rename and the directory is fsynced after it, so a
// checkpoint reported saved cannot vanish (or appear truncated) on power
// loss — a snapshot whose WAL prefix has been compacted away is the only
// copy of that state.
func (s *FileSnapshots) Save(id uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := fileSync(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(s.dir, fmt.Sprintf("snap-%016d", id))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := dirSync(s.dir); err != nil {
		return err
	}
	// Drop older snapshots.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil //nolint:nilerr // best-effort cleanup
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(final) && len(e.Name()) == len("snap-0000000000000000") {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return nil
}

// Load implements SnapshotStore.
func (s *FileSnapshots) Load() (uint64, []byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, nil, false, err
	}
	best := ""
	var bestID uint64
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "snap-%d", &id); err == nil {
			if best == "" || id > bestID {
				best, bestID = e.Name(), id
			}
		}
	}
	if best == "" {
		return 0, nil, false, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, best))
	if err != nil {
		return 0, nil, false, err
	}
	return bestID, data, true, nil
}
