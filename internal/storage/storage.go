// Package storage provides the durable state Rex replicas need: an
// append-only record log for the consensus engine (acceptor promises,
// accepted values, chosen values) and a snapshot store for checkpoints
// (§3.3). Both have an in-memory implementation for simulation and tests
// and a file-backed implementation for cmd/rexd.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rex/internal/obs"
)

// Log is an append-only record log. Append must be durable before it
// returns (to the level the implementation promises).
type Log interface {
	// Append adds one record.
	Append(rec []byte) error
	// AppendBatch adds recs as one atomic unit of work: either every
	// record is durable when it returns or none is acknowledged. A batch
	// costs at most one fsync regardless of length.
	AppendBatch(recs [][]byte) error
	// Records returns all records in append order.
	Records() ([][]byte, error)
	// Rewrite atomically replaces the log's contents (compaction).
	Rewrite(recs [][]byte) error
	// Close releases resources.
	Close() error
}

// SnapshotStore persists checkpoint snapshots.
type SnapshotStore interface {
	// Save stores a snapshot for the given checkpoint id, replacing any
	// previous snapshot.
	Save(id uint64, data []byte) error
	// Load returns the most recent snapshot, if any.
	Load() (id uint64, data []byte, ok bool, err error)
}

// MemLog is an in-memory Log.
type MemLog struct {
	mu   sync.Mutex
	recs [][]byte
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, append([]byte(nil), rec...))
	return nil
}

// AppendBatch implements Log.
func (l *MemLog) AppendBatch(recs [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range recs {
		l.recs = append(l.recs, append([]byte(nil), rec...))
	}
	return nil
}

// Records implements Log.
func (l *MemLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Rewrite implements Log.
func (l *MemLog) Rewrite(recs [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = nil
	for _, r := range recs {
		l.recs = append(l.recs, append([]byte(nil), r...))
	}
	return nil
}

// Close implements Log.
func (l *MemLog) Close() error { return nil }

// MemSnapshots is an in-memory SnapshotStore.
type MemSnapshots struct {
	mu   sync.Mutex
	id   uint64
	data []byte
	has  bool
}

// NewMemSnapshots returns an empty in-memory snapshot store.
func NewMemSnapshots() *MemSnapshots { return &MemSnapshots{} }

// Save implements SnapshotStore.
func (s *MemSnapshots) Save(id uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.id = id
	s.data = append([]byte(nil), data...)
	s.has = true
	return nil
}

// Load implements SnapshotStore.
func (s *MemSnapshots) Load() (uint64, []byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.has {
		return 0, nil, false, nil
	}
	return s.id, append([]byte(nil), s.data...), true, nil
}

// LogMetrics holds the WAL's observability series. All fields are always
// allocated (OpenFileLog substitutes a private set when none is attached)
// so the commit path never nil-checks.
type LogMetrics struct {
	Appends *obs.Counter // records acknowledged durable
	Batches *obs.Counter // committer flushes (one buffered write each)
	Fsyncs  *obs.Counter // fsyncs issued by the committer

	// BatchRecords is the group-commit batch-size distribution: records
	// coalesced per flush. Fsyncs/Appends well below 1 with BatchRecords
	// means group commit is amortizing the disk.
	BatchRecords *obs.SizeHistogram
	// AppendWait is the caller-observed Append latency: enqueue to
	// durable acknowledgement, including the wait for the shared fsync.
	AppendWait *obs.Histogram
}

// NewLogMetrics allocates all series.
func NewLogMetrics() *LogMetrics {
	return &LogMetrics{
		Appends:      obs.NewCounter(),
		Batches:      obs.NewCounter(),
		Fsyncs:       obs.NewCounter(),
		BatchRecords: obs.NewSizeHistogram(),
		AppendWait:   obs.NewHistogram(),
	}
}

// Register exports the series into reg under rex_wal_* names.
func (m *LogMetrics) Register(reg *obs.Registry) {
	reg.RegisterCounter("rex_wal_appends_total", m.Appends)
	reg.RegisterCounter("rex_wal_batches_total", m.Batches)
	reg.RegisterCounter("rex_wal_fsyncs_total", m.Fsyncs)
	reg.RegisterSizeHistogram("rex_wal_batch_records", m.BatchRecords)
	reg.RegisterHistogram("rex_wal_append_wait_seconds", m.AppendWait)
}

// FileLog is a file-backed Log. Records are framed as
// [len uint32][crc uint32][payload]; recovery stops at the first torn or
// corrupt frame, which is the expected state after a crash mid-append.
//
// Appends are group-committed: callers enqueue framed records and block
// while a dedicated committer goroutine coalesces everything queued into
// one buffered write and (when syncEach is set) one fsync, then wakes every
// caller the flush covered. N concurrent appends therefore cost one disk
// round-trip, not N, while each Append still returns only after its record
// is durable — the same contract as the unbatched implementation.
type FileLog struct {
	mu   sync.Mutex
	wake *sync.Cond // committer: work queued or closing
	done *sync.Cond // appenders: durable frontier advanced (or error/exit)
	path string
	f    *os.File
	sync bool
	obs  *LogMetrics

	queue   [][]byte // records accepted but not yet written
	enq     uint64   // records ever enqueued
	dur     uint64   // records durable (written, and fsynced when sync)
	ioErr   error    // sticky committer failure; fails all later calls
	closing bool     // Close in progress: drain queue, reject new appends
	exited  bool     // committer goroutine has returned
}

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("storage: log closed")

// fileSync and dirSync are indirections over fsync so durability-ordering
// tests can observe that a temp file is synced before it is renamed into
// place and that the containing directory is synced after. Production code
// never swaps them.
var (
	fileSync = func(f *os.File) error { return f.Sync() }
	dirSync  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
)

// validPrefixLen walks data's frames and returns the byte length of the
// longest prefix of intact records (the recovery point after a crash).
func validPrefixLen(data []byte) int {
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) {
			break // torn tail
		}
		if crc32.ChecksumIEEE(data[off+8:off+8+n]) != crc {
			break // corrupt tail
		}
		off += 8 + n
	}
	return off
}

// OpenFileLog opens (creating if needed) a file log. If syncEach is true,
// every Append (or AppendBatch) fsyncs before acknowledging.
//
// Recovery discipline: the file is scanned on open and any torn or corrupt
// tail is truncated away (the bytes are preserved in a ".quarantine"
// sidecar for debugging) so that records appended after a crash land
// immediately behind the last intact record instead of behind garbage that
// Records would stop at. When the log file is newly created, the parent
// directory is fsynced so the empty WAL itself survives power loss.
func OpenFileLog(path string, syncEach bool) (*FileLog, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if created {
		// A file that exists only in the page cache's view of its parent
		// directory can vanish on power loss even though every Append to
		// it "succeeded" — make the directory entry durable first.
		if err := dirSync(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	valid := validPrefixLen(data)
	if valid < len(data) {
		// Torn or corrupt tail from a crash mid-append: quarantine the
		// garbage for debugging, then truncate so future appends extend
		// the intact prefix instead of hiding behind it.
		if err := os.WriteFile(path+".quarantine", data[valid:], 0o644); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
		if err := fileSync(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l := &FileLog{path: path, f: f, sync: syncEach, obs: NewLogMetrics()}
	l.wake = sync.NewCond(&l.mu)
	l.done = sync.NewCond(&l.mu)
	go l.committer()
	return l, nil
}

// SetMetrics attaches the WAL's observability series. Call before the log
// is shared between goroutines (metrics are swapped, not merged).
func (l *FileLog) SetMetrics(m *LogMetrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m != nil {
		l.obs = m
	}
}

// DurableRecords returns how many appended records the committer has made
// durable so far — the WAL's durable frontier, exposed on rexd's /healthz.
func (l *FileLog) DurableRecords() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dur
}

// Append implements Log: the record is queued for the committer and the
// call returns once the flush covering it is durable.
func (l *FileLog) Append(rec []byte) error {
	return l.AppendBatch([][]byte{rec})
}

// AppendBatch implements Log.
func (l *FileLog) AppendBatch(recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	start := time.Now()
	l.mu.Lock()
	if l.f == nil || l.closing {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.ioErr != nil {
		err := l.ioErr
		l.mu.Unlock()
		return err
	}
	l.queue = append(l.queue, recs...)
	l.enq += uint64(len(recs))
	target := l.enq
	l.wake.Signal()
	for l.dur < target && l.ioErr == nil {
		l.done.Wait()
	}
	err := l.ioErr
	m := l.obs
	l.mu.Unlock()
	if err != nil {
		return err
	}
	m.Appends.Add(uint64(len(recs)))
	m.AppendWait.Observe(time.Since(start))
	return nil
}

// committer is the group-commit loop: it takes everything queued, frames
// it into one buffer, and retires it with a single write (+ fsync when the
// log is in sync mode). It reuses its frame buffer across flushes.
func (l *FileLog) committer() {
	var buf []byte
	l.mu.Lock()
	for {
		for len(l.queue) == 0 && !l.closing && l.ioErr == nil {
			l.wake.Wait()
		}
		if l.ioErr != nil || (l.closing && len(l.queue) == 0) {
			l.exited = true
			l.done.Broadcast()
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		f := l.f
		m := l.obs
		l.mu.Unlock()

		buf = buf[:0]
		for _, rec := range batch {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
			buf = append(buf, hdr[:]...)
			buf = append(buf, rec...)
		}
		_, err := f.Write(buf)
		if err == nil && l.sync {
			m.Fsyncs.Inc()
			err = fileSync(f)
		}
		m.Batches.Inc()
		m.BatchRecords.Observe(uint64(len(batch)))

		l.mu.Lock()
		if err != nil {
			l.ioErr = err
		} else {
			l.dur += uint64(len(batch))
		}
		l.done.Broadcast()
	}
}

// flushLocked waits for every enqueued record to be durable (or for the
// committer to fail). Callers must hold l.mu.
func (l *FileLog) flushLocked() error {
	for l.dur < l.enq && l.ioErr == nil {
		l.done.Wait()
	}
	return l.ioErr
}

// Records implements Log. It flushes the committer queue first so every
// acknowledged record is visible.
func (l *FileLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(l.path)
	if err != nil {
		return nil, err
	}
	var recs [][]byte
	for off := 0; off+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) {
			break // torn tail
		}
		body := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(body) != crc {
			break // corrupt tail
		}
		recs = append(recs, append([]byte(nil), body...))
		off += 8 + n
	}
	return recs, nil
}

// Rewrite implements Log: writes a fresh log beside the old one and renames
// it into place, so compaction is crash-atomic. The committer queue is
// flushed first; the committer is idle for the duration (the lock is held
// and the queue is empty), so swapping the file handle is safe.
func (l *FileLog) Rewrite(recs [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(rec))
		if _, err := nf.Write(hdr[:]); err != nil {
			nf.Close()
			return err
		}
		if _, err := nf.Write(rec); err != nil {
			nf.Close()
			return err
		}
	}
	if err := fileSync(nf); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return err
	}
	// The rename itself must survive power loss: fsync the directory so the
	// new directory entry is durable before the compacted records are
	// trusted to have replaced the old log.
	if err := dirSync(filepath.Dir(l.path)); err != nil {
		return err
	}
	l.f.Close()
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.f = nil
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		l.f = nil
		return err
	}
	l.f = f
	return nil
}

// Close implements Log. Records already queued are flushed durably before
// the file is closed; new appends are rejected with ErrClosed.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.closing = true
	l.wake.Signal()
	for !l.exited {
		l.done.Wait()
	}
	err := l.f.Close()
	l.f = nil
	if l.ioErr != nil && err == nil {
		err = l.ioErr
	}
	return err
}

// FileSnapshots stores snapshots as files in a directory, one per
// checkpoint, keeping only the latest.
type FileSnapshots struct {
	mu  sync.Mutex
	dir string
}

// NewFileSnapshots returns a snapshot store rooted at dir (created if
// needed).
func NewFileSnapshots(dir string) (*FileSnapshots, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileSnapshots{dir: dir}, nil
}

// Save implements SnapshotStore. The snapshot bytes are fsynced to a temp
// file before the rename and the directory is fsynced after it, so a
// checkpoint reported saved cannot vanish (or appear truncated) on power
// loss — a snapshot whose WAL prefix has been compacted away is the only
// copy of that state.
func (s *FileSnapshots) Save(id uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := fileSync(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(s.dir, fmt.Sprintf("snap-%016d", id))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := dirSync(s.dir); err != nil {
		return err
	}
	// Drop older snapshots.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil //nolint:nilerr // best-effort cleanup
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(final) && len(e.Name()) == len("snap-0000000000000000") {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return nil
}

// Load implements SnapshotStore.
func (s *FileSnapshots) Load() (uint64, []byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, nil, false, err
	}
	best := ""
	var bestID uint64
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "snap-%d", &id); err == nil {
			if best == "" || id > bestID {
				best, bestID = e.Name(), id
			}
		}
	}
	if best == "" {
		return 0, nil, false, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, best))
	if err != nil {
		return 0, nil, false, err
	}
	return bestID, data, true, nil
}
