package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testLog(t *testing.T, open func(t *testing.T) Log) {
	t.Helper()
	l := open(t)
	defer l.Close()
	recs := [][]byte{[]byte("a"), []byte("bb"), {}, []byte("dddd")}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := l.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if err := l.Rewrite([][]byte{[]byte("only")}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	got, _ = l.Records()
	if len(got) != 1 || string(got[0]) != "only" {
		t.Fatalf("after rewrite: %q", got)
	}
	if err := l.Append([]byte("more")); err != nil {
		t.Fatalf("Append after rewrite: %v", err)
	}
	got, _ = l.Records()
	if len(got) != 2 || string(got[1]) != "more" {
		t.Fatalf("after rewrite+append: %q", got)
	}
}

func TestMemLog(t *testing.T) {
	testLog(t, func(t *testing.T) Log { return NewMemLog() })
}

func TestFileLog(t *testing.T) {
	testLog(t, func(t *testing.T) Log {
		l, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), false)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return l
	})
}

func TestFileLogReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Close()
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil || len(got) != 2 || string(got[1]) != "two" {
		t.Fatalf("reopen: %v %q", err, got)
	}
	l2.Append([]byte("three"))
	got, _ = l2.Records()
	if len(got) != 3 {
		t.Fatalf("append after reopen: %q", got)
	}
}

func TestFileLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFileLog(path, false)
	l.Append([]byte("good"))
	l.Append([]byte("alsogood"))
	l.Close()
	// Simulate a crash mid-append: truncate the file inside the last frame.
	info, _ := os.Stat(path)
	os.Truncate(path, info.Size()-3)
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after torn tail: %q", got)
	}
}

func TestFileLogCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFileLog(path, false)
	l.Append([]byte("good"))
	l.Append([]byte("soon-corrupt"))
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	l2, _ := OpenFileLog(path, false)
	defer l2.Close()
	got, _ := l2.Records()
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after corrupt tail: %q", got)
	}
}

func TestSnapshots(t *testing.T) {
	stores := map[string]SnapshotStore{
		"mem": NewMemSnapshots(),
	}
	fs, err := NewFileSnapshots(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores["file"] = fs
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			if _, _, ok, err := s.Load(); ok || err != nil {
				t.Fatalf("empty Load = %v, %v", ok, err)
			}
			if err := s.Save(3, []byte("v3")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save(7, []byte("v7")); err != nil {
				t.Fatal(err)
			}
			id, data, ok, err := s.Load()
			if err != nil || !ok || id != 7 || string(data) != "v7" {
				t.Fatalf("Load = %d %q %v %v", id, data, ok, err)
			}
		})
	}
}

func TestQuickFileLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(recs [][]byte) bool {
		i++
		path := filepath.Join(dir, "wal", "")
		os.Remove(path)
		l, err := OpenFileLog(path, false)
		if err != nil {
			return false
		}
		defer l.Close()
		if err := l.Rewrite(nil); err != nil {
			return false
		}
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				return false
			}
		}
		got, err := l.Records()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for j := range recs {
			if !bytes.Equal(got[j], recs[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
