package storage

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testLog(t *testing.T, open func(t *testing.T) Log) {
	t.Helper()
	l := open(t)
	defer l.Close()
	recs := [][]byte{[]byte("a"), []byte("bb"), {}, []byte("dddd")}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := l.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if err := l.Rewrite([][]byte{[]byte("only")}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	got, _ = l.Records()
	if len(got) != 1 || string(got[0]) != "only" {
		t.Fatalf("after rewrite: %q", got)
	}
	if err := l.Append([]byte("more")); err != nil {
		t.Fatalf("Append after rewrite: %v", err)
	}
	got, _ = l.Records()
	if len(got) != 2 || string(got[1]) != "more" {
		t.Fatalf("after rewrite+append: %q", got)
	}
}

func TestMemLog(t *testing.T) {
	testLog(t, func(t *testing.T) Log { return NewMemLog() })
}

func TestFileLog(t *testing.T) {
	testLog(t, func(t *testing.T) Log {
		l, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), false)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return l
	})
}

func TestFileLogReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Close()
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil || len(got) != 2 || string(got[1]) != "two" {
		t.Fatalf("reopen: %v %q", err, got)
	}
	l2.Append([]byte("three"))
	got, _ = l2.Records()
	if len(got) != 3 {
		t.Fatalf("append after reopen: %q", got)
	}
}

func TestFileLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFileLog(path, false)
	l.Append([]byte("good"))
	l.Append([]byte("alsogood"))
	l.Close()
	// Simulate a crash mid-append: truncate the file inside the last frame.
	info, _ := os.Stat(path)
	os.Truncate(path, info.Size()-3)
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after torn tail: %q", got)
	}
}

func TestFileLogCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFileLog(path, false)
	l.Append([]byte("good"))
	l.Append([]byte("soon-corrupt"))
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	l2, _ := OpenFileLog(path, false)
	defer l2.Close()
	got, _ := l2.Records()
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after corrupt tail: %q", got)
	}
}

func TestSnapshots(t *testing.T) {
	stores := map[string]SnapshotStore{
		"mem": NewMemSnapshots(),
	}
	fs, err := NewFileSnapshots(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores["file"] = fs
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			if _, _, ok, err := s.Load(); ok || err != nil {
				t.Fatalf("empty Load = %v, %v", ok, err)
			}
			if err := s.Save(3, []byte("v3")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save(7, []byte("v7")); err != nil {
				t.Fatal(err)
			}
			id, data, ok, err := s.Load()
			if err != nil || !ok || id != 7 || string(data) != "v7" {
				t.Fatalf("Load = %d %q %v %v", id, data, ok, err)
			}
		})
	}
}

func TestQuickFileLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(recs [][]byte) bool {
		i++
		path := filepath.Join(dir, "wal", "")
		os.Remove(path)
		l, err := OpenFileLog(path, false)
		if err != nil {
			return false
		}
		defer l.Close()
		if err := l.Rewrite(nil); err != nil {
			return false
		}
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				return false
			}
		}
		got, err := l.Records()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for j := range recs {
			if !bytes.Equal(got[j], recs[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// captureSyncs swaps the fsync indirections for recording versions and
// restores them when the test ends. Each recorded event carries the state
// of the filesystem at sync time, which is what the durability argument
// rests on: the temp file's bytes must be on disk before the rename makes
// them the authoritative copy, and the rename must itself be synced (via
// the directory) before Save/Rewrite returns.
type syncEvent struct {
	kind       string // "file" or "dir"
	name       string // file path or directory path
	finalSeen  bool   // the final (post-rename) path existed at sync time
	finalBytes []byte // contents of the final path at sync time, if present
	tmpSeen    bool   // the temp file existed at sync time
}

func captureSyncs(t *testing.T, finalPath, tmpPath string) *[]syncEvent {
	t.Helper()
	var events []syncEvent
	prevFile, prevDir := fileSync, dirSync
	t.Cleanup(func() { fileSync, dirSync = prevFile, prevDir })
	observe := func(kind, name string) error {
		ev := syncEvent{kind: kind, name: name}
		if data, err := os.ReadFile(finalPath); err == nil {
			ev.finalSeen = true
			ev.finalBytes = data
		}
		if _, err := os.Stat(tmpPath); err == nil {
			ev.tmpSeen = true
		}
		events = append(events, ev)
		return nil
	}
	fileSync = func(f *os.File) error {
		if err := f.Sync(); err != nil {
			return err
		}
		return observe("file", f.Name())
	}
	dirSync = func(dir string) error {
		return observe("dir", dir)
	}
	return &events
}

// TestSnapshotSaveSyncOrdering proves FileSnapshots.Save fsyncs the temp
// file before renaming it into place and fsyncs the directory after: a
// checkpoint whose WAL prefix was compacted away is the only copy of that
// state, so it must not be able to vanish on power loss.
func TestSnapshotSaveSyncOrdering(t *testing.T) {
	dir := t.TempDir()
	final := filepath.Join(dir, "snap-0000000000000042")
	events := captureSyncs(t, final, filepath.Join(dir, "snap.tmp"))
	s, err := NewFileSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("checkpoint payload")
	if err := s.Save(42, data); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if len(*events) != 2 {
		t.Fatalf("got %d sync events, want file then dir: %+v", len(*events), *events)
	}
	fe, de := (*events)[0], (*events)[1]
	if fe.kind != "file" || filepath.Base(fe.name) != "snap.tmp" {
		t.Fatalf("first sync = %+v, want fsync of snap.tmp", fe)
	}
	if fe.finalSeen {
		t.Fatal("snapshot renamed into place before its bytes were fsynced")
	}
	if de.kind != "dir" || de.name != dir {
		t.Fatalf("second sync = %+v, want fsync of %s", de, dir)
	}
	if !de.finalSeen || !bytes.Equal(de.finalBytes, data) {
		t.Fatalf("directory fsynced before the rename was complete: %+v", de)
	}
}

// TestRewriteSyncOrdering proves FileLog.Rewrite fsyncs the compacted log
// before the rename and the directory after, so compaction cannot lose
// the log on power loss.
func TestRewriteSyncOrdering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("old-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("old-2")); err != nil {
		t.Fatal(err)
	}
	events := captureSyncs(t, path, path+".tmp")
	if err := l.Rewrite([][]byte{[]byte("compacted")}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if len(*events) != 2 {
		t.Fatalf("got %d sync events, want file then dir: %+v", len(*events), *events)
	}
	fe, de := (*events)[0], (*events)[1]
	if fe.kind != "file" || fe.name != path+".tmp" {
		t.Fatalf("first sync = %+v, want fsync of %s.tmp", fe, path)
	}
	// At temp-file sync time the rename has not happened: the tmp file is
	// still on disk and the live log still holds the pre-compaction bytes.
	if !fe.tmpSeen {
		t.Fatal("tmp file missing at fsync time")
	}
	if !bytes.Contains(fe.finalBytes, []byte("old-1")) {
		t.Fatalf("live log already replaced before tmp was fsynced: %q", fe.finalBytes)
	}
	if de.kind != "dir" || de.name != dir {
		t.Fatalf("second sync = %+v, want fsync of %s", de, dir)
	}
	if de.tmpSeen {
		t.Fatal("tmp file still present when the directory was fsynced")
	}
	if !bytes.Contains(de.finalBytes, []byte("compacted")) || bytes.Contains(de.finalBytes, []byte("old-1")) {
		t.Fatalf("directory fsynced before the compacted log was renamed in: %q", de.finalBytes)
	}
	recs, err := l.Records()
	if err != nil || len(recs) != 1 || string(recs[0]) != "compacted" {
		t.Fatalf("after rewrite: recs=%q err=%v", recs, err)
	}
}

func TestLogAppendBatch(t *testing.T) {
	logs := map[string]Log{"mem": NewMemLog()}
	fl, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), false)
	if err != nil {
		t.Fatal(err)
	}
	logs["file"] = fl
	for name, l := range logs {
		t.Run(name, func(t *testing.T) {
			defer l.Close()
			if err := l.AppendBatch(nil); err != nil {
				t.Fatalf("empty AppendBatch: %v", err)
			}
			if err := l.Append([]byte("solo")); err != nil {
				t.Fatal(err)
			}
			batch := [][]byte{[]byte("b1"), {}, []byte("b3-longer")}
			if err := l.AppendBatch(batch); err != nil {
				t.Fatalf("AppendBatch: %v", err)
			}
			got, err := l.Records()
			if err != nil {
				t.Fatal(err)
			}
			want := [][]byte{[]byte("solo"), []byte("b1"), {}, []byte("b3-longer")}
			if len(got) != len(want) {
				t.Fatalf("got %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Errorf("record %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestFileLogGroupCommit proves concurrent appenders share flushes: with a
// slow fsync, N appends must coalesce into far fewer fsyncs, and at least
// one committer batch must carry more than one record.
func TestFileLogGroupCommit(t *testing.T) {
	prev := fileSync
	t.Cleanup(func() { fileSync = prev })
	fileSync = func(f *os.File) error {
		time.Sleep(200 * time.Microsecond) // widen the coalescing window
		return prev(f)
	}
	l, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const appenders, perAppender = 8, 25
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if err := l.Append([]byte{byte(a), byte(i)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	recs, err := l.Records()
	if err != nil || len(recs) != appenders*perAppender {
		t.Fatalf("Records: %d, %v; want %d", len(recs), err, appenders*perAppender)
	}
	appends, fsyncs := l.obs.Appends.Value(), l.obs.Fsyncs.Value()
	if appends != appenders*perAppender {
		t.Fatalf("Appends counter = %d, want %d", appends, appenders*perAppender)
	}
	if fsyncs >= appends {
		t.Fatalf("no group commit: %d fsyncs for %d appends", fsyncs, appends)
	}
	if max := l.obs.BatchRecords.Max(); max < 2 {
		t.Fatalf("max batch size = %d, want >= 2", max)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.2f appends/fsync), max batch %d",
		appends, fsyncs, float64(appends)/float64(fsyncs), l.obs.BatchRecords.Max())
}

// TestFileLogCreateDirSync proves OpenFileLog fsyncs the parent directory
// when it creates the log file — before any append can be acknowledged —
// and does not re-sync it when the file already exists. Without the sync,
// the WAL's directory entry can vanish on power loss even though every
// append to it succeeded.
func TestFileLogCreateDirSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	var dirSyncs []string
	fileExistedAtSync := false
	prevDir := dirSync
	t.Cleanup(func() { dirSync = prevDir })
	dirSync = func(d string) error {
		dirSyncs = append(dirSyncs, d)
		if _, err := os.Stat(path); err == nil {
			fileExistedAtSync = true
		}
		return prevDir(d)
	}
	l, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirSyncs) != 1 || dirSyncs[0] != dir {
		t.Fatalf("dir syncs on create = %v, want exactly [%s]", dirSyncs, dir)
	}
	if !fileExistedAtSync {
		t.Fatal("directory fsynced before the log file existed")
	}
	if err := l.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	dirSyncs = nil
	l2, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(dirSyncs) != 0 {
		t.Fatalf("dir syncs on reopen of existing log = %v, want none", dirSyncs)
	}
}

// TestFileLogQuarantine proves the crash-recovery bugfix end to end: a torn
// tail is moved to the .quarantine sidecar, the log is truncated to the
// intact prefix, and appends after reopen land behind that prefix — so they
// are visible after yet another reopen instead of hiding behind garbage.
func TestFileLogQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("keep-1"))
	l.Append([]byte("keep-2"))
	l.Close()
	// Crash mid-append: half a frame of garbage lands at the tail.
	torn := []byte{9, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r'}
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write(torn)
	f.Close()

	l2, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	q, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if !bytes.Equal(q, torn) {
		t.Fatalf("quarantine = %x, want the torn bytes %x", q, torn)
	}
	if err := l2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got, err := l3.Records()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"keep-1", "keep-2", "post-crash"}
	if len(got) != len(want) {
		t.Fatalf("after quarantine+append+reopen: %q, want %q", got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFileLogCrashRecoveryProperty drives random append/crash schedules:
// every record acknowledged before the crash must be recovered, nothing at
// or beyond the tear may be, and records appended after reopen must be
// durable across a further reopen. Appends go through both Append and
// AppendBatch, with a fraction issued concurrently.
func TestFileLogCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for iter := 0; iter < 30; iter++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal")
		l, err := OpenFileLog(path, true)
		if err != nil {
			t.Fatal(err)
		}
		var acked [][]byte
		next := 0
		mkRec := func() []byte {
			rec := make([]byte, rng.Intn(64))
			rng.Read(rec)
			rec = append(rec, byte(next), byte(next>>8))
			next++
			return rec
		}
		for _, phase := range []int{0, 1} {
			ops := 1 + rng.Intn(8)
			for op := 0; op < ops; op++ {
				switch rng.Intn(3) {
				case 0: // single append
					rec := mkRec()
					if err := l.Append(rec); err != nil {
						t.Fatalf("iter %d: Append: %v", iter, err)
					}
					acked = append(acked, rec)
				case 1: // batch append
					batch := make([][]byte, 1+rng.Intn(5))
					for i := range batch {
						batch[i] = mkRec()
					}
					if err := l.AppendBatch(batch); err != nil {
						t.Fatalf("iter %d: AppendBatch: %v", iter, err)
					}
					acked = append(acked, batch...)
				case 2: // concurrent appends (acked set joined after)
					n := 2 + rng.Intn(4)
					recs := make([][]byte, n)
					for i := range recs {
						recs[i] = mkRec()
					}
					var wg sync.WaitGroup
					for _, rec := range recs {
						wg.Add(1)
						go func(rec []byte) {
							defer wg.Done()
							if err := l.Append(rec); err != nil {
								t.Errorf("iter %d: concurrent Append: %v", iter, err)
							}
						}(rec)
					}
					wg.Wait()
					// Concurrent appends land in an arbitrary relative
					// order; compare as a set below.
					acked = append(acked, recs...)
				}
			}
			if phase == 1 {
				break
			}
			// Kill: the process dies with a torn or corrupt tail on disk.
			l.Close()
			switch rng.Intn(3) {
			case 0: // torn frame: garbage header + partial payload
				g := make([]byte, 1+rng.Intn(20))
				rng.Read(g)
				if len(g) >= 4 {
					g[0], g[1], g[2], g[3] = 0xff, 0x7f, 0, 0 // length far past EOF
				}
				f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				f.Write(g)
				f.Close()
			case 1: // bit flip inside the tail of the file
				data, _ := os.ReadFile(path)
				if len(data) > 0 {
					data[len(data)-1-rng.Intn(min(8, len(data)))] ^= 1 << rng.Intn(8)
					os.WriteFile(path, data, 0o644)
					// The flipped frame (and anything behind it) is lost.
					// The surviving intact prefix becomes the expectation —
					// but every survivor must itself have been acked, so
					// corruption can only shrink the set, never invent.
					kept := parseFrames(data[:validPrefixLen(data)])
					count := make(map[string]int, len(acked))
					for _, r := range acked {
						count[string(r)]++
					}
					for _, r := range kept {
						if count[string(r)] == 0 {
							t.Fatalf("iter %d: intact prefix holds never-acked record %x", iter, r)
						}
						count[string(r)]--
					}
					acked = kept
				}
			case 2: // clean crash: queue was drained by Close, no tear
			}
			l, err = OpenFileLog(path, true)
			if err != nil {
				t.Fatalf("iter %d: reopen: %v", iter, err)
			}
			got, err := l.Records()
			if err != nil {
				t.Fatalf("iter %d: Records after crash: %v", iter, err)
			}
			assertSameRecords(t, iter, "post-crash", got, acked)
		}
		l.Close()
		l2, err := OpenFileLog(path, true)
		if err != nil {
			t.Fatalf("iter %d: final reopen: %v", iter, err)
		}
		got, err := l2.Records()
		if err != nil {
			t.Fatalf("iter %d: final Records: %v", iter, err)
		}
		assertSameRecords(t, iter, "final", got, acked)
		l2.Close()
	}
}

// parseFrames decodes the records in a fully-valid frame sequence.
func parseFrames(data []byte) [][]byte {
	var recs [][]byte
	for off := 0; off+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		recs = append(recs, append([]byte(nil), data[off+8:off+8+n]...))
		off += 8 + n
	}
	return recs
}

// assertSameRecords compares got and want as multisets (concurrent appends
// have no deterministic relative order) and fails the test on mismatch.
func assertSameRecords(t *testing.T, iter int, stage string, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("iter %d %s: %d records recovered, want %d", iter, stage, len(got), len(want))
	}
	count := make(map[string]int, len(want))
	for _, r := range want {
		count[string(r)]++
	}
	for _, r := range got {
		if count[string(r)] == 0 {
			t.Fatalf("iter %d %s: recovered unexpected record %x", iter, stage, r)
		}
		count[string(r)]--
	}
}
