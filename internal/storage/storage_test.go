package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testLog(t *testing.T, open func(t *testing.T) Log) {
	t.Helper()
	l := open(t)
	defer l.Close()
	recs := [][]byte{[]byte("a"), []byte("bb"), {}, []byte("dddd")}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := l.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if err := l.Rewrite([][]byte{[]byte("only")}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	got, _ = l.Records()
	if len(got) != 1 || string(got[0]) != "only" {
		t.Fatalf("after rewrite: %q", got)
	}
	if err := l.Append([]byte("more")); err != nil {
		t.Fatalf("Append after rewrite: %v", err)
	}
	got, _ = l.Records()
	if len(got) != 2 || string(got[1]) != "more" {
		t.Fatalf("after rewrite+append: %q", got)
	}
}

func TestMemLog(t *testing.T) {
	testLog(t, func(t *testing.T) Log { return NewMemLog() })
}

func TestFileLog(t *testing.T) {
	testLog(t, func(t *testing.T) Log {
		l, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), false)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return l
	})
}

func TestFileLogReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Close()
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil || len(got) != 2 || string(got[1]) != "two" {
		t.Fatalf("reopen: %v %q", err, got)
	}
	l2.Append([]byte("three"))
	got, _ = l2.Records()
	if len(got) != 3 {
		t.Fatalf("append after reopen: %q", got)
	}
}

func TestFileLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFileLog(path, false)
	l.Append([]byte("good"))
	l.Append([]byte("alsogood"))
	l.Close()
	// Simulate a crash mid-append: truncate the file inside the last frame.
	info, _ := os.Stat(path)
	os.Truncate(path, info.Size()-3)
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after torn tail: %q", got)
	}
}

func TestFileLogCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFileLog(path, false)
	l.Append([]byte("good"))
	l.Append([]byte("soon-corrupt"))
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	l2, _ := OpenFileLog(path, false)
	defer l2.Close()
	got, _ := l2.Records()
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after corrupt tail: %q", got)
	}
}

func TestSnapshots(t *testing.T) {
	stores := map[string]SnapshotStore{
		"mem": NewMemSnapshots(),
	}
	fs, err := NewFileSnapshots(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores["file"] = fs
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			if _, _, ok, err := s.Load(); ok || err != nil {
				t.Fatalf("empty Load = %v, %v", ok, err)
			}
			if err := s.Save(3, []byte("v3")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save(7, []byte("v7")); err != nil {
				t.Fatal(err)
			}
			id, data, ok, err := s.Load()
			if err != nil || !ok || id != 7 || string(data) != "v7" {
				t.Fatalf("Load = %d %q %v %v", id, data, ok, err)
			}
		})
	}
}

func TestQuickFileLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(recs [][]byte) bool {
		i++
		path := filepath.Join(dir, "wal", "")
		os.Remove(path)
		l, err := OpenFileLog(path, false)
		if err != nil {
			return false
		}
		defer l.Close()
		if err := l.Rewrite(nil); err != nil {
			return false
		}
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				return false
			}
		}
		got, err := l.Records()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for j := range recs {
			if !bytes.Equal(got[j], recs[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// captureSyncs swaps the fsync indirections for recording versions and
// restores them when the test ends. Each recorded event carries the state
// of the filesystem at sync time, which is what the durability argument
// rests on: the temp file's bytes must be on disk before the rename makes
// them the authoritative copy, and the rename must itself be synced (via
// the directory) before Save/Rewrite returns.
type syncEvent struct {
	kind       string // "file" or "dir"
	name       string // file path or directory path
	finalSeen  bool   // the final (post-rename) path existed at sync time
	finalBytes []byte // contents of the final path at sync time, if present
	tmpSeen    bool   // the temp file existed at sync time
}

func captureSyncs(t *testing.T, finalPath, tmpPath string) *[]syncEvent {
	t.Helper()
	var events []syncEvent
	prevFile, prevDir := fileSync, dirSync
	t.Cleanup(func() { fileSync, dirSync = prevFile, prevDir })
	observe := func(kind, name string) error {
		ev := syncEvent{kind: kind, name: name}
		if data, err := os.ReadFile(finalPath); err == nil {
			ev.finalSeen = true
			ev.finalBytes = data
		}
		if _, err := os.Stat(tmpPath); err == nil {
			ev.tmpSeen = true
		}
		events = append(events, ev)
		return nil
	}
	fileSync = func(f *os.File) error {
		if err := f.Sync(); err != nil {
			return err
		}
		return observe("file", f.Name())
	}
	dirSync = func(dir string) error {
		return observe("dir", dir)
	}
	return &events
}

// TestSnapshotSaveSyncOrdering proves FileSnapshots.Save fsyncs the temp
// file before renaming it into place and fsyncs the directory after: a
// checkpoint whose WAL prefix was compacted away is the only copy of that
// state, so it must not be able to vanish on power loss.
func TestSnapshotSaveSyncOrdering(t *testing.T) {
	dir := t.TempDir()
	final := filepath.Join(dir, "snap-0000000000000042")
	events := captureSyncs(t, final, filepath.Join(dir, "snap.tmp"))
	s, err := NewFileSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("checkpoint payload")
	if err := s.Save(42, data); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if len(*events) != 2 {
		t.Fatalf("got %d sync events, want file then dir: %+v", len(*events), *events)
	}
	fe, de := (*events)[0], (*events)[1]
	if fe.kind != "file" || filepath.Base(fe.name) != "snap.tmp" {
		t.Fatalf("first sync = %+v, want fsync of snap.tmp", fe)
	}
	if fe.finalSeen {
		t.Fatal("snapshot renamed into place before its bytes were fsynced")
	}
	if de.kind != "dir" || de.name != dir {
		t.Fatalf("second sync = %+v, want fsync of %s", de, dir)
	}
	if !de.finalSeen || !bytes.Equal(de.finalBytes, data) {
		t.Fatalf("directory fsynced before the rename was complete: %+v", de)
	}
}

// TestRewriteSyncOrdering proves FileLog.Rewrite fsyncs the compacted log
// before the rename and the directory after, so compaction cannot lose
// the log on power loss.
func TestRewriteSyncOrdering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("old-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("old-2")); err != nil {
		t.Fatal(err)
	}
	events := captureSyncs(t, path, path+".tmp")
	if err := l.Rewrite([][]byte{[]byte("compacted")}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if len(*events) != 2 {
		t.Fatalf("got %d sync events, want file then dir: %+v", len(*events), *events)
	}
	fe, de := (*events)[0], (*events)[1]
	if fe.kind != "file" || fe.name != path+".tmp" {
		t.Fatalf("first sync = %+v, want fsync of %s.tmp", fe, path)
	}
	// At temp-file sync time the rename has not happened: the tmp file is
	// still on disk and the live log still holds the pre-compaction bytes.
	if !fe.tmpSeen {
		t.Fatal("tmp file missing at fsync time")
	}
	if !bytes.Contains(fe.finalBytes, []byte("old-1")) {
		t.Fatalf("live log already replaced before tmp was fsynced: %q", fe.finalBytes)
	}
	if de.kind != "dir" || de.name != dir {
		t.Fatalf("second sync = %+v, want fsync of %s", de, dir)
	}
	if de.tmpSeen {
		t.Fatal("tmp file still present when the directory was fsynced")
	}
	if !bytes.Contains(de.finalBytes, []byte("compacted")) || bytes.Contains(de.finalBytes, []byte("old-1")) {
		t.Fatalf("directory fsynced before the compacted log was renamed in: %q", de.finalBytes)
	}
	recs, err := l.Records()
	if err != nil || len(recs) != 1 || string(recs[0]) != "compacted" {
		t.Fatalf("after rewrite: recs=%q err=%v", recs, err)
	}
}
