// Quickstart: a replicated, multi-threaded counter service in ~100 lines.
//
// It defines a tiny state machine with two counters protected by separate
// Rex locks, assembles a 3-replica cluster on the deterministic simulator,
// runs concurrent clients against it, and shows that every replica
// converges to the same state.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"rex"
)

// Counters is the application: named counters, each guarded by its own
// Rex lock so increments to different counters run concurrently.
type Counters struct {
	locks  map[string]*rex.Lock
	values map[string]int64
}

func newCounters(rt *rex.Runtime, host *rex.TimerHost) rex.StateMachine {
	c := &Counters{
		locks:  make(map[string]*rex.Lock),
		values: make(map[string]int64),
	}
	// Resources must be created deterministically: fix the counter set up
	// front.
	for _, name := range []string{"apples", "oranges"} {
		c.locks[name] = rex.NewLock(rt, "counter-"+name)
	}
	return c
}

// Apply handles "add <name> <n>" and "get <name>".
func (c *Counters) Apply(ctx *rex.Ctx, req []byte) []byte {
	parts := strings.Fields(string(req))
	lock, ok := c.locks[parts[1]]
	if !ok {
		return []byte("unknown counter")
	}
	w := ctx.Worker()
	switch parts[0] {
	case "add":
		n, _ := strconv.ParseInt(parts[2], 10, 64)
		lock.Lock(w)
		c.values[parts[1]] += n
		v := c.values[parts[1]]
		lock.Unlock(w)
		return []byte(strconv.FormatInt(v, 10))
	case "get":
		lock.Lock(w)
		v := c.values[parts[1]]
		lock.Unlock(w)
		return []byte(strconv.FormatInt(v, 10))
	}
	return []byte("bad request")
}

func (c *Counters) WriteCheckpoint(w io.Writer) error {
	for _, name := range []string{"apples", "oranges"} {
		fmt.Fprintf(w, "%s=%d\n", name, c.values[name])
	}
	return nil
}

func (c *Counters) ReadCheckpoint(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if name, val, ok := strings.Cut(line, "="); ok {
			c.values[name], _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return nil
}

func main() {
	// A simulated 8-core environment; swap in rex.NewRealEnv() plus real
	// transports (see cmd/rexd) for a real deployment.
	e := rex.NewSimEnv(8)
	e.Run(func() {
		c := rex.NewCluster(e, newCounters, rex.ClusterOptions{
			Replicas: 3,
			Workers:  4,
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			panic(err)
		}

		// Two clients hammer different counters concurrently.
		g := rex.NewGroup(e)
		for i, name := range []string{"apples", "oranges"} {
			i, name := i, name
			g.Add(1)
			e.Go("client", func() {
				defer g.Done()
				cl := c.NewClient(uint64(i + 1))
				for j := 0; j < 50; j++ {
					if _, err := cl.Do([]byte("add " + name + " 2")); err != nil {
						panic(err)
					}
				}
			})
		}
		g.Wait()

		cl := c.NewClient(99)
		apples, _ := cl.Do([]byte("get apples"))
		oranges, _ := cl.Do([]byte("get oranges"))
		fmt.Printf("apples=%s oranges=%s (want 100 each)\n", apples, oranges)

		// Show replica convergence: every replica's checkpoint is equal.
		e.Sleep(200 * time.Millisecond)
		var states []string
		for i, r := range c.Replicas {
			var buf bytes.Buffer
			r.StateMachineForTest().WriteCheckpoint(&buf)
			states = append(states, buf.String())
			fmt.Printf("replica %d (%v):\n%s", i, r.Role(), buf.String())
		}
		if states[0] == states[1] && states[1] == states[2] {
			fmt.Println("all replicas converged ✓")
		} else {
			fmt.Println("replicas diverged ✗")
		}
		c.Stop()
	})
}
