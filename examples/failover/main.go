// failover: a scripted Figure-10-style availability timeline.
//
// The compute-bound thumbnail server runs under saturating load while the
// script takes a checkpoint, kills the primary, and brings it back; the
// per-second throughput trace shows the outage, the election, and the
// flow-control sag while the rejoined replica catches up.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"os"

	"rex/internal/bench"
)

func main() {
	cfg := bench.DefaultFig10()
	fmt.Println("running the failover timeline (virtual time, ~36 simulated seconds)...")
	samples := bench.Fig10(cfg)
	bench.PrintFig10(os.Stdout, cfg, samples)
}
