// lockservice: the paper's Chubby-like lock service with the two query
// semantics from §6.5.
//
// Lease renewals and file updates go through replication; read-only
// queries run outside the protocol on native-mode threads — on the primary
// they observe speculative (pre-consensus) state, on a secondary they
// observe committed, replayed state.
//
//	go run ./examples/lockservice
package main

import (
	"fmt"
	"time"

	"rex"
	"rex/internal/apps"
	"rex/internal/apps/lockserver"
	"rex/internal/wire"
)

func main() {
	app := apps.LockServer()
	e := rex.NewSimEnv(8)
	e.Run(func() {
		c := rex.NewCluster(e, app.Factory, rex.ClusterOptions{
			Replicas:    3,
			Workers:     4,
			ReadWorkers: 2, // the native-mode query pool (hybrid execution)
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			panic(err)
		}

		const me = 7
		cl := c.NewClient(me)
		must := func(resp []byte, err error) []byte {
			if err != nil {
				panic(err)
			}
			return resp
		}

		resp := must(cl.Do(lockserver.CreateReq("/svc/leader", me, []byte("I am the service leader"))))
		fmt.Printf("create /svc/leader: status=%d\n", resp[0])
		for i := 0; i < 5; i++ {
			resp = must(cl.Do(lockserver.RenewReq("/svc/leader", me)))
			fmt.Printf("renew %d: status=%d\n", i+1, resp[0])
			e.Sleep(20 * time.Millisecond)
		}

		// Another client cannot steal the lease while it is held.
		thief := c.NewClient(8)
		resp = must(thief.Do(lockserver.UpdateReq("/svc/leader", 8, []byte("mine now"))))
		fmt.Printf("thief update: status=%d (2 = held by another client)\n", resp[0])

		// Query semantics: the same read on the primary (speculative) and a
		// secondary (committed).
		info := lockserver.InfoReq("/svc/leader")
		readInfo := func(replica int) string {
			resp, err := cl.Query(replica, info)
			if err != nil {
				return fmt.Sprintf("error: %v", err)
			}
			d := wire.NewDecoder(resp)
			if !d.Bool() {
				return "not replicated here yet"
			}
			holder := d.Uvarint()
			d.Uvarint() // expiry
			renews := d.Uvarint()
			return fmt.Sprintf("holder=%d renews=%d", holder, renews)
		}
		fmt.Printf("query on primary   %d: %s\n", p, readInfo(p))
		secondary := (p + 1) % 3
		// Give the secondary a moment to replay.
		e.Sleep(100 * time.Millisecond)
		fmt.Printf("query on secondary %d: %s\n", secondary, readInfo(secondary))
		c.Stop()
	})
}
