// kvservice: a replicated LevelDB-style LSM key/value store with
// checkpointing and a full failover, built from the lsmkv application in
// internal/apps.
//
// The demo loads data through the replicated API, takes a checkpoint
// (snapshotted by a secondary while replay is paused at the marked cut,
// with the trace prefix garbage-collected afterwards), kills the primary
// mid-load, and verifies that no acknowledged write is lost.
//
//	go run ./examples/kvservice
package main

import (
	"fmt"
	"time"

	"rex"
	"rex/internal/apps"
	"rex/internal/apps/lsmkv"
	"rex/internal/wire"
)

func main() {
	app := apps.LSMKV()
	e := rex.NewSimEnv(8)
	e.Run(func() {
		c := rex.NewCluster(e, app.Factory, rex.ClusterOptions{
			Replicas:        3,
			Workers:         4,
			Timers:          app.Timers, // the LSM compaction background task
			CheckpointEvery: 400 * time.Millisecond,
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			panic(err)
		}
		fmt.Printf("primary is replica %d\n", p)

		cl := c.NewClient(1)
		put := func(k, v string) {
			if _, err := cl.Do(lsmkv.PutReq(k, []byte(v))); err != nil {
				panic(err)
			}
		}
		get := func(k string) (string, bool) {
			resp, err := cl.Do(lsmkv.GetReq(k))
			if err != nil {
				panic(err)
			}
			d := wire.NewDecoder(resp)
			ok := d.Bool()
			return string(d.BytesVal()), ok
		}

		for i := 0; i < 300; i++ {
			put(fmt.Sprintf("user:%04d", i), fmt.Sprintf("profile-%d", i))
		}
		fmt.Println("loaded 300 keys through the replicated API")

		// Let a periodic checkpoint land (taken by a designated secondary;
		// the Paxos log prefix is then garbage-collected).
		e.Sleep(600 * time.Millisecond)
		for i, s := range c.Snaps {
			if id, _, ok, _ := s.Load(); ok {
				fmt.Printf("replica %d holds checkpoint %d\n", i, id)
			}
		}

		// Kill the primary; the client transparently fails over.
		fmt.Printf("killing primary %d...\n", p)
		c.Crash(p)
		put("after:failover", "still-works")
		np := c.Primary()
		fmt.Printf("new primary is replica %d\n", np)

		if v, ok := get("user:0042"); !ok || v != "profile-42" {
			panic(fmt.Sprintf("lost acknowledged write: %q %v", v, ok))
		}
		if v, _ := get("after:failover"); v != "still-works" {
			panic("post-failover write lost")
		}
		fmt.Println("all acknowledged writes survived the failover ✓")

		// Bring the old primary back: it rolls back its speculative state
		// and catches up from the checkpoint plus the committed trace.
		if err := c.Restart(p); err != nil {
			panic(err)
		}
		if _, err := c.WaitConverged(20 * time.Second); err != nil {
			panic(err)
		}
		fmt.Println("old primary rejoined and all replicas converged ✓")
		c.Stop()
	})
}
