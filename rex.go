// Package rex is a replicated state machine framework for multi-core
// servers, reproducing "Rex: Replication at the Speed of Multi-core"
// (Guo et al., EuroSys 2014).
//
// Standard state-machine replication agrees on a total order of requests
// and executes them sequentially, wasting multi-core hardware. Rex instead
// uses an execute-agree-follow model: the primary executes request
// handlers concurrently, recording synchronization decisions as a
// partially ordered trace; replicas agree on a sequence of growing traces
// through Paxos; and secondaries replay the trace concurrently, making the
// same synchronization choices to reach the same state.
//
// # Building an application
//
// Implement StateMachine, coordinating all shared state exclusively with
// the primitives created from the Runtime your Factory receives:
//
//	type Counter struct {
//		mu *rex.Lock
//		n  int64
//	}
//
//	func NewCounter(rt *rex.Runtime, host *rex.TimerHost) rex.StateMachine {
//		return &Counter{mu: rex.NewLock(rt, "counter")}
//	}
//
//	func (c *Counter) Apply(ctx *rex.Ctx, req []byte) []byte {
//		w := ctx.Worker()
//		c.mu.Lock(w)
//		c.n++
//		v := c.n
//		c.mu.Unlock(w)
//		return []byte(strconv.FormatInt(v, 10))
//	}
//
// Handlers must be deterministic apart from the Rex primitives and Ctx's
// recorded helpers (Ctx.Now, Ctx.Rand). Run replicas with NewReplica
// (see Config), or assemble an in-process cluster with NewCluster — on the
// real environment (NewRealEnv) or the deterministic simulator
// (NewSimEnv), which models a configurable number of cores and makes whole
// cluster runs, elections and failovers reproducible.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper's
// reproduced evaluation.
package rex

import (
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/readpath"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/sim"
)

// Core application API.
type (
	// StateMachine is the replicated application (the paper's RexRSM).
	StateMachine = core.StateMachine
	// QueryHandler optionally serves read-only queries outside the
	// replication protocol.
	QueryHandler = core.QueryHandler
	// Factory constructs the application deterministically on every
	// replica.
	Factory = core.Factory
	// TimerHost registers background tasks (the paper's AddTimer).
	TimerHost = core.TimerHost
	// Ctx is a handler's execution context, bound to one logical thread.
	Ctx = core.Ctx
	// Runtime owns a replica's logical threads; primitives are created
	// against it.
	Runtime = sched.Runtime
	// Worker is one logical thread.
	Worker = sched.Worker
)

// Synchronization primitives (Fig. 3 / Table 1).
type (
	// Lock is Rex's mutex, with TryLock.
	Lock = rexsync.Lock
	// RWLock is Rex's readers–writer lock.
	RWLock = rexsync.RWLock
	// Cond is Rex's condition variable.
	Cond = rexsync.Cond
	// Semaphore is Rex's counting semaphore.
	Semaphore = rexsync.Semaphore
)

// Primitive constructors.
var (
	NewLock      = rexsync.NewLock
	NewRWLock    = rexsync.NewRWLock
	NewCond      = rexsync.NewCond
	NewSemaphore = rexsync.NewSemaphore
)

// Conflict classes (DESIGN.md §12): state machines that additionally
// implement ConflictClassifier get per-class thread dispatch and
// lock-event elision on class-owned locks.
type (
	// ConflictClass partitions requests that provably cannot conflict
	// across classes; ConflictAll is the catch-all.
	ConflictClass = core.ConflictClass
	// ConflictClassifier is optionally implemented by a StateMachine to
	// map each request to its conflict class.
	ConflictClassifier = core.ConflictClassifier
)

// ConflictAll is the catch-all conflict class: a request that may
// conflict with anything, dispatched under an admission barrier.
const ConflictAll = core.ConflictAll

// Class-owned primitive constructors: lock events taken by the owning
// class are elided from the trace and reconstructed from program order
// on replay.
var (
	NewLockInClass   = rexsync.NewLockInClass
	NewRWLockInClass = rexsync.NewRWLockInClass
)

// Replication engine.
type (
	// Replica is one Rex replica.
	Replica = core.Replica
	// Config configures a replica.
	Config = core.Config
	// Role is a replica's current role.
	Role = core.Role
	// Stats is a replica's counter snapshot.
	Stats = core.Stats
	// ErrNotPrimary redirects a client to the leader.
	ErrNotPrimary = core.ErrNotPrimary
	// NativeHost runs a state machine unreplicated (the native baseline).
	NativeHost = core.NativeHost
)

// Replica roles.
const (
	RoleSecondary = core.RoleSecondary
	RolePrimary   = core.RolePrimary
	RoleFaulted   = core.RoleFaulted
)

// NewReplica creates a replica from a Config.
var NewReplica = core.NewReplica

// NewNativeHost runs a state machine without replication.
var NewNativeHost = core.NewNativeHost

// Execution environments.
type (
	// Env abstracts the execution environment (tasks, clock, CPU model).
	Env = env.Env
	// SimEnv is the deterministic simulated environment.
	SimEnv = sim.Env
)

// Group is a WaitGroup equivalent that works under both environments.
type Group = env.Group

// NewGroup returns a Group for the given environment.
var NewGroup = env.NewGroup

// NewRealEnv returns the real execution environment (goroutines, wall
// clock, CPU spinning).
func NewRealEnv() Env { return env.NewReal() }

// NewSimEnv returns a deterministic simulated environment modeling the
// given number of CPU cores; drive it with its Run method.
func NewSimEnv(cores int) *SimEnv { return sim.New(cores) }

// In-process clusters.
type (
	// Cluster is an in-process replica group with a simulated network.
	Cluster = cluster.Cluster
	// ClusterOptions tunes an in-process cluster.
	ClusterOptions = cluster.Options
	// Client submits requests with retry and primary discovery.
	Client = cluster.Client
)

// NewCluster assembles an in-process cluster (call Start on it).
var NewCluster = cluster.New

// Read path (DESIGN.md §11).
type (
	// ReadLevel is a read's consistency level, passed to Client.QueryLevel.
	ReadLevel = readpath.Level
	// ReadToken is a client session token carried across writes and
	// session-level reads for read-your-writes / monotonic reads.
	ReadToken = readpath.Token
)

// Consistency levels for Client.QueryLevel.
const (
	// Linearizable reads observe every write committed before the read
	// was issued; served by the primary off a quorum read lease, or a
	// consensus barrier when the lease is unavailable.
	Linearizable = readpath.Linearizable
	// Session reads may be served by any replica whose replayed frontier
	// covers the client's session token (read-your-writes, monotonic
	// reads within the session).
	Session = readpath.Session
	// Eventual reads are served immediately by any replica.
	Eventual = readpath.Eventual
)

// ParseReadLevel parses "linearizable", "session", or "eventual".
var ParseReadLevel = readpath.ParseLevel
