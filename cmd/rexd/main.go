// Command rexd runs one Rex process over TCP, serving one of the built-in
// applications (see internal/apps). A three-replica local cluster:
//
//	rexd -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	     -client 127.0.0.1:8000 -app lsmkv -dir /tmp/rex0 &
//	rexd -id 1 -peers ... -client 127.0.0.1:8001 -app lsmkv -dir /tmp/rex1 &
//	rexd -id 2 -peers ... -client 127.0.0.1:8002 -app lsmkv -dir /tmp/rex2 &
//
// With -shards N the same processes host N independent replica groups
// (one core.Replica per group per process, per-group WAL and snapshot
// directories) and clients route requests by key; see DESIGN.md §9.
//
// Then drive it with rexctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rex/internal/apps"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/rebalance"
	"rex/internal/reconfig"
	"rex/internal/server"
	"rex/internal/shard"
	"rex/internal/storage"
	"rex/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "node id (index into -peers)")
	peers := flag.String("peers", "", "comma-separated replication addresses, one per node")
	clientAddr := flag.String("client", "", "address to serve clients on")
	appName := flag.String("app", "lsmkv", "application: thumbnail|lockserver|lsmkv|hashdb|simplefs|memcache")
	dir := flag.String("dir", "", "data directory (WAL + checkpoints; per-group subdirectories when sharded)")
	workers := flag.Int("workers", 8, "request worker threads (per group)")
	readWorkers := flag.Int("read-workers", 2, "read-only query threads (per group)")
	maxInflight := flag.Int("max-inflight", 0, "per-group concurrent client requests before the server NACKs with retry-after (0 = default 1024, negative = unbounded)")
	maxOutstanding := flag.Int("max-outstanding", 0, "admitted-but-unanswered requests per group, i.e. propose pipeline depth (0 = default 1024)")
	admissionTarget := flag.Duration("admission-target", 0, "CoDel sojourn target before the admission gate sheds (0 = default 25ms, negative = disable shedding)")
	admissionInterval := flag.Duration("admission-interval", 0, "CoDel control interval (0 = default 100ms)")
	maxAdmissionWaiters := flag.Int("max-admission-waiters", 0, "submitters allowed to block at the admission gate before arrivals are shed outright (0 = 4x -max-outstanding)")
	checkpointEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (0 = explicit opt-out; recovery cost is then bounded only by -checkpoint-max-log)")
	checkpointMaxLog := flag.Int64("checkpoint-max-log", 0, "force a checkpoint once this many log instances accumulate without one (0 = default 4096, negative = no floor)")
	shards := flag.Int("shards", 1, "number of independent replica groups (1 = unsharded)")
	rebalanceOn := flag.Bool("rebalance", false, "with -shards: enable live range rebalancing (rexctl rebalance split|merge|move)")
	groupReplicas := flag.Int("group-replicas", 0, "replicas per group (0 = one per node)")
	metricsAddr := flag.String("metrics", "", "address to serve the metrics text dump on (e.g. :8080; empty = disabled)")
	join := flag.Bool("join", false, "start as a joining learner: this node is outside the bootstrap membership and must be admitted with `rexctl reconfig add|replace`")
	verbose := flag.Bool("v", false, "verbose replica logging")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || *id < 0 || *id >= len(addrs) {
		log.Fatalf("rexd: -peers must list all nodes and -id must index into it")
	}
	if *clientAddr == "" {
		log.Fatalf("rexd: -client address required")
	}
	if *dir == "" {
		log.Fatalf("rexd: -dir data directory required")
	}
	if *checkpointEvery == 0 {
		log.Printf("rexd: WARNING: periodic checkpoints disabled (-checkpoint-every 0); " +
			"rebuild after a crash or demotion replays everything since the last checkpoint, " +
			"bounded only by the -checkpoint-max-log floor")
		if *checkpointMaxLog < 0 {
			log.Printf("rexd: WARNING: -checkpoint-max-log < 0 removes the log-growth floor too; " +
				"recovery time is now unbounded")
		}
	}
	app, ok := apps.Get(*appName)
	if !ok {
		log.Fatalf("rexd: unknown application %q", *appName)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatalf("rexd: %v", err)
	}
	ep, err := transport.ListenTCP(*id, addrs)
	if err != nil {
		log.Fatalf("rexd: listen: %v", err)
	}

	reg := obs.NewRegistry()
	ep.RegisterMetrics(reg)

	e := env.NewReal()
	template := core.Config{
		Env:                              e,
		Factory:                          app.Factory,
		Workers:                          *workers,
		Timers:                           app.Timers,
		ReadWorkers:                      *readWorkers,
		CheckpointEvery:                  *checkpointEvery,
		MaxLogInstancesWithoutCheckpoint: *checkpointMaxLog,
		MaxOutstanding:                   *maxOutstanding,
		AdmissionTarget:                  *admissionTarget,
		AdmissionInterval:                *admissionInterval,
		MaxAdmissionWaiters:              *maxAdmissionWaiters,
		ElectionTimeout:                  150 * time.Millisecond,
		Seed:                             int64(*id) + 1,
	}
	srvOpts := server.Options{MaxInflightPerGroup: *maxInflight}
	if *verbose {
		template.Logf = log.Printf
	}
	if *join {
		if *shards > 1 {
			log.Fatalf("rexd: -join supports unsharded deployments (admit a sharded node group by group with rexctl reconfig)")
		}
		m := reconfig.Joiner(len(addrs), *id)
		template.Members = &m
	}

	var wals []*storage.FileLog
	// openWAL opens one group's (or the unsharded replica's) WAL with
	// metrics registered into the given (possibly group-labeled) registry.
	openWAL := func(gdir string, labeled *obs.Registry) (*storage.FileLog, error) {
		if err := os.MkdirAll(gdir, 0o755); err != nil {
			return nil, err
		}
		wal, err := storage.OpenFileLog(filepath.Join(gdir, "wal"), true)
		if err != nil {
			return nil, fmt.Errorf("open WAL: %w", err)
		}
		walObs := storage.NewLogMetrics()
		walObs.Register(labeled)
		wal.SetMetrics(walObs)
		wals = append(wals, wal)
		return wal, nil
	}
	groupDir := func(g int) string { return filepath.Join(*dir, fmt.Sprintf("group-%d", g)) }

	var srv *server.Server
	var stopReplicas func()
	healthReps := make(map[int]*core.Replica) // by group id, for /healthz and /readyz
	if *shards > 1 {
		rpg := *groupReplicas
		if rpg <= 0 {
			rpg = len(addrs)
		}
		smap, err := shard.NewShardMap(1, *shards, len(addrs), rpg)
		if err != nil {
			log.Fatalf("rexd: %v", err)
		}
		var wrap func(int, core.Factory) core.Factory
		if *rebalanceOn {
			smap.EnsureRanges()
			wrap = func(g int, inner core.Factory) core.Factory {
				return rebalance.WrapFactory(inner, smap, g, g == 0)
			}
		}
		node, err := shard.NewNode(shard.NodeConfig{
			Env:      e,
			Map:      smap,
			Node:     *id,
			Endpoint: ep,
			NewLog: func(g int) (storage.Log, error) {
				return openWAL(groupDir(g), reg.Labeled("group", strconv.Itoa(g)))
			},
			NewSnapshots: func(g int) (storage.SnapshotStore, error) {
				return storage.NewFileSnapshots(filepath.Join(groupDir(g), "snapshots"))
			},
			Template:      template,
			Metrics:       reg,
			RebalanceWrap: wrap,
		})
		if err != nil {
			log.Fatalf("rexd: %v", err)
		}
		if err := node.Start(); err != nil {
			log.Fatalf("rexd: start: %v", err)
		}
		srv, err = server.ListenNodeWith(node, *clientAddr, srvOpts)
		if err != nil {
			log.Fatalf("rexd: client listener: %v", err)
		}
		for _, g := range node.Groups() {
			healthReps[g] = node.Replica(g)
		}
		stopReplicas = node.Stop
		log.Printf("rexd: node %d/%d hosting groups %v of %d (%q) on %s (replication %s)",
			*id, len(addrs), node.Groups(), *shards, *appName, srv.Addr(), addrs[*id])
	} else {
		wal, err := openWAL(*dir, reg)
		if err != nil {
			log.Fatalf("rexd: %v", err)
		}
		snaps, err := storage.NewFileSnapshots(filepath.Join(*dir, "snapshots"))
		if err != nil {
			log.Fatalf("rexd: snapshot store: %v", err)
		}
		cfg := template
		cfg.ID = *id
		cfg.N = len(addrs)
		cfg.Endpoint = ep
		cfg.Log = wal
		cfg.Snapshots = snaps
		cfg.Metrics = reg
		// Committed membership changes carry the replication addresses of
		// admitted nodes; teach the TCP mesh each one so this process can
		// reach joiners it was not started knowing about. (Unsharded only:
		// membership ids here are node ids. A sharded group's membership
		// uses in-group replica ids, which must not be fed to the node-id
		// keyed peer map.)
		cfg.OnMembership = func(m reconfig.Membership) {
			for nid, a := range m.Addrs {
				ep.SetPeer(nid, a)
			}
		}
		replica, err := core.NewReplica(cfg)
		if err != nil {
			log.Fatalf("rexd: %v", err)
		}
		if err := replica.Start(); err != nil {
			log.Fatalf("rexd: start: %v", err)
		}
		srv, err = server.ListenWith(replica, *clientAddr, srvOpts)
		if err != nil {
			log.Fatalf("rexd: client listener: %v", err)
		}
		healthReps[0] = replica
		stopReplicas = replica.Stop
		log.Printf("rexd: replica %d/%d serving %q on %s (replication %s)",
			*id, len(addrs), *appName, srv.Addr(), addrs[*id])
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WriteText(w); err != nil {
				log.Printf("rexd: metrics dump: %v", err)
			}
		})
		// Group ids in a stable order for the health dumps.
		gids := make([]int, 0, len(healthReps))
		for g := range healthReps {
			gids = append(gids, g)
		}
		sort.Ints(gids)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, g := range gids {
				h := healthReps[g].Health()
				fmt.Fprintf(w, "group %d: role=%s epoch=%d applied=%d chosen=%d voters=%v learners=%v voter=%v catching_up=%v\n",
					g, h.Role, h.Epoch, h.Applied, h.ChosenSeq, h.Voters, h.Learners, h.Voter, h.CatchingUp)
			}
			var dur uint64
			for _, wal := range wals {
				dur += wal.DurableRecords()
			}
			fmt.Fprintf(w, "wal_durable_records=%d\n", dur)
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			var notReady []string
			for _, g := range gids {
				h := healthReps[g].Health()
				if !h.Ready() {
					notReady = append(notReady,
						fmt.Sprintf("group %d: role=%s voter=%v catching_up=%v", g, h.Role, h.Voter, h.CatchingUp))
				}
			}
			if len(notReady) > 0 {
				w.WriteHeader(http.StatusServiceUnavailable)
				for _, line := range notReady {
					fmt.Fprintln(w, line)
				}
				return
			}
			fmt.Fprintln(w, "ok")
		})
		go func() {
			log.Printf("rexd: metrics on http://%s/metrics (health: /healthz, /readyz)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("rexd: metrics endpoint: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("rexd: shutting down")
	srv.Close()
	stopReplicas()
	for _, wal := range wals {
		wal.Close()
	}
}
