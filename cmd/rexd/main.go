// Command rexd runs one Rex replica over TCP, serving one of the built-in
// applications (see internal/apps). A three-replica local cluster:
//
//	rexd -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	     -client 127.0.0.1:8000 -app lsmkv -dir /tmp/rex0 &
//	rexd -id 1 -peers ... -client 127.0.0.1:8001 -app lsmkv -dir /tmp/rex1 &
//	rexd -id 2 -peers ... -client 127.0.0.1:8002 -app lsmkv -dir /tmp/rex2 &
//
// Then drive it with rexctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"rex/internal/apps"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/server"
	"rex/internal/storage"
	"rex/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "replica id (index into -peers)")
	peers := flag.String("peers", "", "comma-separated replication addresses, one per replica")
	clientAddr := flag.String("client", "", "address to serve clients on")
	appName := flag.String("app", "lsmkv", "application: thumbnail|lockserver|lsmkv|hashdb|simplefs|memcache")
	dir := flag.String("dir", "", "data directory (WAL + checkpoints)")
	workers := flag.Int("workers", 8, "request worker threads")
	readWorkers := flag.Int("read-workers", 2, "read-only query threads")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = disabled)")
	metricsAddr := flag.String("metrics", "", "address to serve the metrics text dump on (e.g. :8080; empty = disabled)")
	verbose := flag.Bool("v", false, "verbose replica logging")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || *id < 0 || *id >= len(addrs) {
		log.Fatalf("rexd: -peers must list all replicas and -id must index into it")
	}
	if *clientAddr == "" {
		log.Fatalf("rexd: -client address required")
	}
	if *dir == "" {
		log.Fatalf("rexd: -dir data directory required")
	}
	app, ok := apps.Get(*appName)
	if !ok {
		log.Fatalf("rexd: unknown application %q", *appName)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatalf("rexd: %v", err)
	}
	wal, err := storage.OpenFileLog(filepath.Join(*dir, "wal"), true)
	if err != nil {
		log.Fatalf("rexd: open WAL: %v", err)
	}
	snaps, err := storage.NewFileSnapshots(filepath.Join(*dir, "snapshots"))
	if err != nil {
		log.Fatalf("rexd: snapshot store: %v", err)
	}
	ep, err := transport.ListenTCP(*id, addrs)
	if err != nil {
		log.Fatalf("rexd: listen: %v", err)
	}

	reg := obs.NewRegistry()
	ep.RegisterMetrics(reg)
	walObs := storage.NewLogMetrics()
	walObs.Register(reg)
	wal.SetMetrics(walObs)

	e := env.NewReal()
	cfg := core.Config{
		ID:              *id,
		N:               len(addrs),
		Env:             e,
		Endpoint:        ep,
		Log:             wal,
		Snapshots:       snaps,
		Factory:         app.Factory,
		Workers:         *workers,
		Timers:          app.Timers,
		ReadWorkers:     *readWorkers,
		CheckpointEvery: *checkpointEvery,
		Seed:            int64(*id) + 1,
		Metrics:         reg,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	replica, err := core.NewReplica(cfg)
	if err != nil {
		log.Fatalf("rexd: %v", err)
	}
	if err := replica.Start(); err != nil {
		log.Fatalf("rexd: start: %v", err)
	}
	srv, err := server.Listen(replica, *clientAddr)
	if err != nil {
		log.Fatalf("rexd: client listener: %v", err)
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WriteText(w); err != nil {
				log.Printf("rexd: metrics dump: %v", err)
			}
		})
		go func() {
			log.Printf("rexd: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("rexd: metrics endpoint: %v", err)
			}
		}()
	}
	log.Printf("rexd: replica %d/%d serving %q on %s (replication %s)",
		*id, len(addrs), *appName, srv.Addr(), addrs[*id])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("rexd: shutting down")
	srv.Close()
	replica.Stop()
	wal.Close()
}
