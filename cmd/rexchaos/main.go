// Command rexchaos runs seed-deterministic chaos scenarios against an
// in-process Rex cluster under the simulator and checks the correctness
// contract: linearizability of the recorded client history, the prefix
// property over chosen logs, state agreement after quiescence, and
// replay determinism across restarts. On failure it prints the seed that
// reproduces the exact schedule and verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rex/internal/chaos"
	"rex/internal/obs"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "base seed; scenario i runs with seed+i")
		scenarios = flag.Int("scenarios", 10, "number of scenarios to run")
		app       = flag.String("app", "all", "hashdb|memcache|lockserver|all (all derives the app from each seed)")
		duration  = flag.Duration("duration", 3*time.Second, "virtual client-load phase per scenario")
		shards    = flag.Bool("shards", false, "run the sharded fault-isolation scenario instead (kill one group's primary, check blast radius)")
		groups    = flag.Int("groups", 4, "replica groups for -shards / -rebalance")
		rebal     = flag.Bool("rebalance", false, "run the live-rebalancing scenario instead (split/merge/move ranges under primary-kill churn; global linearizability + session checks)")
		reconfig  = flag.Bool("reconfig", false, "run the reconfiguration scenario instead (replace/add/remove members under partitions)")
		recovery  = flag.Bool("recovery", false, "run the bounded-recovery scenario instead (checkpoints disabled, promote/demote churn, must resync not panic)")
		reads     = flag.Bool("reads", false, "run the consistent-read scenario instead (isolate the primary mid-lease; no stale linearizable read, session reads stay read-your-writes)")
		conflicts = flag.Bool("conflicts", false, "run the conflict-class scenario instead (elision on, failovers mid-load; replay must stay deterministic and the history linearizable)")
		overload  = flag.Bool("overload", false, "run the overload scenario instead (zipfian hot-key storm past admission capacity with a mid-storm primary crash; must shed, keep bounded queues, stay linearizable, and recover)")
		clients   = flag.Int("clients", 0, "storm workers for -overload (0 takes the scenario default)")
		verbose   = flag.Bool("v", false, "log nemesis actions as they fire")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf("    "+format+"\n", args...)
		}
	}

	start := time.Now()
	var failed []int64
	if *reconfig {
		for i := 0; i < *scenarios; i++ {
			s := *seed + int64(i)
			res := chaos.RunReconfigScenario(chaos.ReconfigScenarioConfig{
				Seed:     s,
				App:      *app,
				Duration: *duration,
			}, reg, logf)
			verdict := "OK"
			if !res.OK {
				verdict = "FAIL"
				failed = append(failed, s)
			}
			fmt.Printf("scenario %2d/%d  seed=%-6d app=%-10s faults=%-2d ops=%-4d timeouts=%-3d checked=%-4d wall=%-10v %s\n",
				i+1, *scenarios, s, res.App, res.Faults, res.Ops, res.Timeouts,
				res.Check.Ops, res.CheckerWall.Round(time.Microsecond), verdict)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
		printMetrics(reg)
		if len(failed) > 0 {
			strs := make([]string, len(failed))
			for i, s := range failed {
				strs[i] = fmt.Sprint(s)
			}
			fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
			fmt.Printf("reproduce with: go run ./cmd/rexchaos -reconfig -scenarios 1 -seed %d -duration %v\n",
				failed[0], *duration)
			os.Exit(1)
		}
		fmt.Printf("all %d reconfiguration scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
		return
	}
	if *recovery {
		for i := 0; i < *scenarios; i++ {
			s := *seed + int64(i)
			res := chaos.RunRecoveryScenario(chaos.RecoveryScenarioConfig{
				Seed:     s,
				App:      *app,
				Duration: *duration,
			}, reg, logf)
			verdict := "OK"
			if !res.OK {
				verdict = "FAIL"
				failed = append(failed, s)
			}
			fmt.Printf("scenario %2d/%d  seed=%-6d app=%-10s faults=%-2d ops=%-4d timeouts=%-3d resyncs=%-2d checked=%-4d wall=%-10v %s\n",
				i+1, *scenarios, s, res.App, res.Faults, res.Ops, res.Timeouts,
				res.Resyncs, res.Check.Ops, res.CheckerWall.Round(time.Microsecond), verdict)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
		printMetrics(reg)
		if len(failed) > 0 {
			strs := make([]string, len(failed))
			for i, s := range failed {
				strs[i] = fmt.Sprint(s)
			}
			fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
			fmt.Printf("reproduce with: go run ./cmd/rexchaos -recovery -scenarios 1 -seed %d -duration %v\n",
				failed[0], *duration)
			os.Exit(1)
		}
		fmt.Printf("all %d bounded-recovery scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
		return
	}
	if *reads {
		for i := 0; i < *scenarios; i++ {
			s := *seed + int64(i)
			res := chaos.RunReadsScenario(chaos.ReadsScenarioConfig{
				Seed:     s,
				Duration: *duration,
			}, reg, logf)
			verdict := "OK"
			if !res.OK {
				verdict = "FAIL"
				failed = append(failed, s)
			}
			fmt.Printf("scenario %2d/%d  seed=%-6d app=%-10s faults=%-2d failovers=%-2d ops=%-4d sessionOps=%-4d leaseReads=%-4d followerReads=%-4d timeouts=%-3d wall=%-10v %s\n",
				i+1, *scenarios, s, res.App, res.Faults, res.Failovers, res.Ops,
				res.SessionOps, res.LeaseReads, res.FollowerReads, res.Timeouts,
				res.CheckerWall.Round(time.Microsecond), verdict)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
		printMetrics(reg)
		if len(failed) > 0 {
			strs := make([]string, len(failed))
			for i, s := range failed {
				strs[i] = fmt.Sprint(s)
			}
			fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
			fmt.Printf("reproduce with: go run ./cmd/rexchaos -reads -scenarios 1 -seed %d -duration %v\n",
				failed[0], *duration)
			os.Exit(1)
		}
		fmt.Printf("all %d consistent-read scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
		return
	}
	if *overload {
		for i := 0; i < *scenarios; i++ {
			s := *seed + int64(i)
			dur := *duration
			if dur == 3*time.Second {
				dur = 0 // default flag value: take the scenario's own default
			}
			res := chaos.RunOverloadScenario(chaos.OverloadScenarioConfig{
				Seed:     s,
				Duration: dur,
				Clients:  *clients,
			}, reg, logf)
			verdict := "OK"
			if !res.OK {
				verdict = "FAIL"
				failed = append(failed, s)
			}
			fmt.Printf("scenario %2d/%d  seed=%-6d app=%-10s faults=%-2d failovers=%-2d ops=%-4d discarded=%-4d sheds=%-5d deadline=%-4d budgetDry=%-3d maxOut=%-3d maxWait=%-3d recovery=%d/40 timeouts=%-4d wall=%-10v %s\n",
				i+1, *scenarios, s, res.App, res.Faults, res.Failovers, res.Ops,
				res.Discarded, res.Sheds, res.DeadlineErrs, res.BudgetExhausted,
				res.MaxOutstanding, res.MaxWaiters, res.RecoveryOps, res.Timeouts,
				res.CheckerWall.Round(time.Microsecond), verdict)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
		printMetrics(reg)
		if len(failed) > 0 {
			strs := make([]string, len(failed))
			for i, s := range failed {
				strs[i] = fmt.Sprint(s)
			}
			fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
			fmt.Printf("reproduce with: go run ./cmd/rexchaos -overload -scenarios 1 -seed %d\n", failed[0])
			os.Exit(1)
		}
		fmt.Printf("all %d overload scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
		return
	}
	if *conflicts {
		for i := 0; i < *scenarios; i++ {
			s := *seed + int64(i)
			res := chaos.RunConflictsScenario(chaos.ConflictsScenarioConfig{
				Seed:     s,
				Duration: *duration,
			}, reg, logf)
			verdict := "OK"
			if !res.OK {
				verdict = "FAIL"
				failed = append(failed, s)
			}
			fmt.Printf("scenario %2d/%d  seed=%-6d app=%-10s faults=%-2d failovers=%-2d ops=%-4d elided=%-6d sweeps=%-3d timeouts=%-3d checked=%-4d wall=%-10v %s\n",
				i+1, *scenarios, s, res.App, res.Faults, res.Failovers, res.Ops,
				res.ElidedOps, res.Sweeps, res.Timeouts, res.Check.Ops,
				res.CheckerWall.Round(time.Microsecond), verdict)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
		printMetrics(reg)
		if len(failed) > 0 {
			strs := make([]string, len(failed))
			for i, s := range failed {
				strs[i] = fmt.Sprint(s)
			}
			fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
			fmt.Printf("reproduce with: go run ./cmd/rexchaos -conflicts -scenarios 1 -seed %d -duration %v\n",
				failed[0], *duration)
			os.Exit(1)
		}
		fmt.Printf("all %d conflict-class scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
		return
	}
	if *rebal {
		for i := 0; i < *scenarios; i++ {
			s := *seed + int64(i)
			res := chaos.RunRebalanceScenario(chaos.RebalanceScenarioConfig{
				Seed:   s,
				Groups: *groups,
				Nodes:  *groups,
			}, reg, logf)
			verdict := "OK"
			if !res.OK {
				verdict = "FAIL"
				failed = append(failed, s)
			}
			fmt.Printf("scenario %2d/%d  seed=%-6d groups=%-2d splits=%-2d merges=%-2d moves=%-2d kills=%-2d mapv=%-3d ops=%-5d timeouts=%-3d %s\n",
				i+1, *scenarios, s, *groups, res.Splits, res.Merges, res.Moves,
				res.Kills, res.MapVersion, res.Ops, res.Timeouts, verdict)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
		printMetrics(reg)
		if len(failed) > 0 {
			strs := make([]string, len(failed))
			for i, s := range failed {
				strs[i] = fmt.Sprint(s)
			}
			fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
			fmt.Printf("reproduce with: go run ./cmd/rexchaos -rebalance -scenarios 1 -seed %d -groups %d\n",
				failed[0], *groups)
			os.Exit(1)
		}
		fmt.Printf("all %d rebalance scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
		return
	}
	if *shards {
		for i := 0; i < *scenarios; i++ {
			s := *seed + int64(i)
			res := chaos.RunShardScenario(chaos.ShardScenarioConfig{
				Seed:   s,
				Groups: *groups,
				Phase:  *duration / 2,
			}, reg, logf)
			verdict := "OK"
			if !res.OK {
				verdict = "FAIL"
				failed = append(failed, s)
			}
			fmt.Printf("scenario %2d/%d  seed=%-6d groups=%-2d killed=g%d/r%d ops=%-5d timeouts=%-3d pre=%s post=%s %s\n",
				i+1, *scenarios, s, *groups, res.KilledGroup, res.KilledReplica,
				res.Ops, res.Timeouts, rateList(res.PreKill), rateList(res.PostKill), verdict)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
		printMetrics(reg)
		if len(failed) > 0 {
			strs := make([]string, len(failed))
			for i, s := range failed {
				strs[i] = fmt.Sprint(s)
			}
			fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
			fmt.Printf("reproduce with: go run ./cmd/rexchaos -shards -scenarios 1 -seed %d -groups %d -duration %v\n",
				failed[0], *groups, *duration)
			os.Exit(1)
		}
		fmt.Printf("all %d sharded scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
		return
	}
	for i := 0; i < *scenarios; i++ {
		s := *seed + int64(i)
		sc, err := chaos.NewScenario(s, *app, *duration)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res := sc.Run(reg, logf)
		verdict := "OK"
		if !res.OK {
			verdict = "FAIL"
			failed = append(failed, s)
		}
		fmt.Printf("scenario %2d/%d  seed=%-6d app=%-10s steps=%-2d ops=%-4d timeouts=%-3d checked=%-4d parts=%-3d wall=%-10v %s\n",
			i+1, *scenarios, s, sc.App, res.Faults, res.Ops, res.Timeouts,
			res.Check.Ops, res.Check.Partitions, res.CheckerWall.Round(time.Microsecond), verdict)
		for _, v := range res.Violations {
			fmt.Printf("    violation: %s\n", v)
		}
	}

	printMetrics(reg)
	if len(failed) > 0 {
		strs := make([]string, len(failed))
		for i, s := range failed {
			strs[i] = fmt.Sprint(s)
		}
		fmt.Printf("FAILING SEEDS: %s\n", strings.Join(strs, " "))
		fmt.Printf("reproduce with: go run ./cmd/rexchaos -scenarios 1 -seed %d -app %s -duration %v\n",
			failed[0], *app, *duration)
		os.Exit(1)
	}
	fmt.Printf("all %d scenarios OK in %v\n", *scenarios, time.Since(start).Round(time.Millisecond))
}

// rateList renders per-group ops/sec compactly, e.g. [120 118 125 0].
func rateList(rates []float64) string {
	parts := make([]string, len(rates))
	for i, r := range rates {
		parts[i] = fmt.Sprintf("%.0f", r)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func printMetrics(reg *obs.Registry) {
	snap := reg.Snapshot()
	var faultNames []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, "chaos_fault_") {
			faultNames = append(faultNames, name)
		}
	}
	sort.Strings(faultNames)
	fmt.Printf("faults injected:")
	if len(faultNames) == 0 {
		fmt.Printf(" none")
	}
	for _, name := range faultNames {
		fmt.Printf(" %s=%d", strings.TrimPrefix(name, "chaos_fault_"), snap.Counters[name])
	}
	fmt.Println()
	wall := snap.Histogram("chaos_checker_wall")
	fmt.Printf("checker: histories=%d ops=%d wall mean=%v max=%v\n",
		snap.Counter("chaos_histories_verified"),
		snap.Counter("chaos_ops_checked"),
		wall.Mean().Round(time.Microsecond),
		wall.Max.Round(time.Microsecond))
}
