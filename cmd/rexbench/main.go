// Command rexbench regenerates every table and figure from the paper's
// evaluation (§6) on the deterministic simulator. See EXPERIMENTS.md for
// the expected shapes.
//
// Usage:
//
//	rexbench -exp all                 # everything (takes a while)
//	rexbench -exp fig7 -app thumbnail # one Figure 7 panel
//	rexbench -exp fig10               # the failover timeline
//	rexbench -exp fig7 -quick         # reduced thread counts / durations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rex/internal/apps"
	"rex/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig7|fig8a|fig8b|fig9|fig10|tracesize|edges|ablate-partialorder|ablate-delta|ablate-pipeline|commitpath|shards|reads|rebalance|overload|all")
	appName := flag.String("app", "", "application for fig7 (default: all six)")
	quick := flag.Bool("quick", false, "reduced configurations for a fast pass")
	threads := flag.Int("threads", 8, "worker threads for tracesize/edges/ablations")
	jsonOut := flag.String("json", "", "also write the commitpath/shards/reads result as JSON to this path")
	flag.Parse()

	out := os.Stdout
	runFig7 := func() {
		cfg := bench.DefaultFig7()
		if *quick {
			cfg = bench.QuickFig7()
		}
		list := apps.All()
		if *appName != "" {
			app, ok := apps.Get(*appName)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown application %q\n", *appName)
				os.Exit(2)
			}
			list = []apps.App{app}
		}
		for _, app := range list {
			fmt.Fprintf(out, "running Figure 7 panel for %s...\n", app.Name)
			rows := bench.Fig7(app, cfg)
			bench.PrintFig7(out, app, rows)
		}
	}
	runFig8a := func() {
		cfg := bench.DefaultFig8()
		pcts := []int{10, 60, 80, 100}
		ps := []float64{0.001, 0.01, 0.05, 0.1}
		if *quick {
			cfg.Measure = 400 * time.Millisecond
			pcts = []int{10, 100}
			ps = []float64{0.001, 0.1}
		}
		bench.PrintFig8a(out, bench.Fig8a(cfg, pcts, ps))
	}
	runFig8b := func() {
		cfg := bench.DefaultFig8()
		ps := []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1}
		if *quick {
			cfg.Measure = 400 * time.Millisecond
			ps = []float64{0.01, 0.2, 1}
		}
		bench.PrintFig8b(out, bench.Fig8b(cfg, ps))
	}
	runFig9 := func() {
		cfg := bench.DefaultFig9()
		if *quick {
			cfg.UpdateThreads = []int{2, 16}
			cfg.QueryThreads = 12
			cfg.Measure = 400 * time.Millisecond
		}
		bench.PrintFig9(out, false, bench.Fig9(cfg, false))
		bench.PrintFig9(out, true, bench.Fig9(cfg, true))
	}
	runFig10 := func() {
		cfg := bench.DefaultFig10()
		if *quick {
			cfg.Checkpoint1 = 2 * time.Second
			cfg.Checkpoint2 = 5 * time.Second
			cfg.KillAt = 6 * time.Second
			cfg.RestartAt = 9 * time.Second
			cfg.EndAt = 14 * time.Second
			cfg.ElectionTimeout = time.Second
			cfg.BucketEvery = 500 * time.Millisecond
		}
		bench.PrintFig10(out, cfg, bench.Fig10(cfg))
	}

	runCommitPath := func() {
		res, err := bench.CommitPath()
		if err != nil {
			fmt.Fprintf(os.Stderr, "commitpath: %v\n", err)
			os.Exit(1)
		}
		bench.PrintCommitPath(out, res)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = bench.WriteCommitPathJSON(f, res)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "commitpath: write %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		}
	}

	runShards := func() {
		cfg := bench.DefaultShardScaling()
		if *quick {
			cfg = bench.QuickShardScaling()
		}
		res, err := bench.RunShardScaling(cfg, func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "shards: %v\n", err)
			os.Exit(1)
		}
		bench.PrintShardScaling(out, res)
		// The live-migration experiment rides along with the scaling sweep
		// so BENCH_shard_scaling.json carries both.
		rcfg := bench.DefaultRebalanceBench()
		if *quick {
			rcfg = bench.QuickRebalanceBench()
		}
		rres, err := bench.RunRebalanceBench(rcfg, func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rebalance: %v\n", err)
			os.Exit(1)
		}
		res.Rebalance = &rres
		bench.PrintRebalanceBench(out, rres)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = bench.WriteShardScalingJSON(f, res)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "shards: write %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		}
	}

	runReads := func() {
		cfg := bench.DefaultReadScaling()
		if *quick {
			cfg = bench.QuickReadScaling()
		}
		res, err := bench.RunReadScaling(cfg, func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "reads: %v\n", err)
			os.Exit(1)
		}
		bench.PrintReadScaling(out, res)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = bench.WriteReadScalingJSON(f, res)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "reads: write %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		}
	}

	runOverload := func() {
		cfg := bench.DefaultOverloadBench()
		if *quick {
			cfg = bench.QuickOverloadBench()
		}
		res, err := bench.RunOverloadBench(cfg, func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "overload: %v\n", err)
			os.Exit(1)
		}
		bench.PrintOverloadBench(out, res)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = bench.WriteOverloadJSON(f, res)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "overload: write %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		}
	}

	switch *exp {
	case "table1":
		bench.PrintTable1(out)
	case "fig7":
		runFig7()
	case "fig8a":
		runFig8a()
	case "fig8b":
		runFig8b()
	case "fig9":
		runFig9()
	case "fig10":
		runFig10()
	case "tracesize":
		bench.PrintTraceStats(out, *threads)
	case "edges":
		bench.PrintEdgeAblation(out, *threads)
	case "ablate-partialorder":
		bench.PrintPartialOrderAblation(out, *threads)
	case "ablate-delta":
		bench.PrintDeltaAblation(out, *threads)
	case "ablate-pipeline":
		bench.PrintPipelineAblation(out, *threads)
	case "commitpath":
		runCommitPath()
	case "shards":
		runShards()
	case "reads":
		runReads()
	case "overload":
		runOverload()
	case "rebalance":
		rcfg := bench.DefaultRebalanceBench()
		if *quick {
			rcfg = bench.QuickRebalanceBench()
		}
		rres, err := bench.RunRebalanceBench(rcfg, func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rebalance: %v\n", err)
			os.Exit(1)
		}
		bench.PrintRebalanceBench(out, rres)
	case "all":
		bench.PrintTable1(out)
		runFig7()
		runFig8a()
		runFig8b()
		runFig9()
		runFig10()
		bench.PrintTraceStats(out, *threads)
		bench.PrintEdgeAblation(out, *threads)
		bench.PrintPartialOrderAblation(out, *threads)
		bench.PrintDeltaAblation(out, *threads)
		bench.PrintPipelineAblation(out, *threads)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
