// Command rexctl drives a rexd cluster from the command line.
//
//	rexctl -servers 127.0.0.1:8000,127.0.0.1:8001,127.0.0.1:8002 \
//	       -app lsmkv put mykey myvalue
//	rexctl -servers ... -app lsmkv get mykey
//	rexctl -servers ... -app lsmkv -query -replica 1 get mykey
//	rexctl -servers ... -app lsmkv -level session get mykey
//
// Against a sharded cluster (rexd -shards N), -sharded fetches the shard
// map and routes the command by key (default: the command's first
// argument); `shardmap` prints the deployment's map and `status` prints
// every group's role/leader/progress:
//
//	rexctl -servers ... -app hashdb -sharded put mykey myvalue
//	rexctl -servers ... shardmap
//	rexctl -servers ... status
//
// Cluster operations (see the README runbook): `members` prints the
// committed membership, and `reconfig` proposes a change (the request is
// routed to the group's primary; -group targets one group of a sharded
// deployment):
//
//	rexctl -servers ... members
//	rexctl -servers ... reconfig add 3 127.0.0.1:7003
//	rexctl -servers ... reconfig remove 1
//	rexctl -servers ... reconfig replace 1 3 127.0.0.1:7003
//
// Live rebalancing (rexd -shards N -rebalance): `rebalance` drives
// consensus-committed shard-map changes while the deployment serves
// traffic. Points are uint64 hashes (0x... accepted) or, for anything
// that doesn't parse as a number, a literal key whose hash is used.
// With -live, keyed commands route through the envelope-speaking router
// that follows map changes:
//
//	rexctl -servers ... rebalance status
//	rexctl -servers ... rebalance split 0x4000000000000000
//	rexctl -servers ... rebalance move mykey 1
//	rexctl -servers ... rebalance merge 0x4000000000000000
//	rexctl -servers ... -app hashdb -sharded -live put mykey myvalue
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"rex/internal/apps"
	"rex/internal/core"
	"rex/internal/readpath"
	"rex/internal/server"
	"rex/internal/shard"
)

// fetchMap asks each server in turn for the shard map.
func fetchMap(cl *server.Client, n int) (*shard.ShardMap, error) {
	var err error
	for i := 0; i < n; i++ {
		var m *shard.ShardMap
		if m, err = cl.FetchShardMap(i); err == nil {
			return m, nil
		}
	}
	return nil, err
}

func roleName(r core.Role) string {
	switch r {
	case core.RolePrimary:
		return "primary"
	case core.RoleSecondary:
		return "secondary"
	case core.RoleFaulted:
		return "faulted"
	case core.RoleRemoved:
		return "removed"
	}
	return fmt.Sprintf("role-%d", r)
}

// parsePoint reads a range-space point: a uint64 (decimal or 0x hex),
// or a literal key whose hash is used.
func parsePoint(s string) uint64 {
	if h, err := strconv.ParseUint(s, 0, 64); err == nil {
		return h
	}
	return shard.HashKey([]byte(s))
}

// runRebalance parses and drives one live shard-map change:
// `status`, `split <at>`, `merge <boundary>`, or `move <at> <dest>`.
func runRebalance(id uint64, m *shard.ShardMap, addrs []string, args []string) error {
	cd, err := server.NewCoordinator(id, m, addrs)
	if err != nil {
		return err
	}
	cd.Logf = log.Printf
	if len(args) == 0 {
		return fmt.Errorf("rebalance needs a subcommand: status|split|merge|move")
	}
	switch args[0] {
	case "status":
		cur, pending, err := cd.FetchMap()
		if err != nil {
			return err
		}
		fmt.Printf("map (pending=%v):\n%s\n", pending, cur)
		for g := 0; g < cur.Groups(); g++ {
			st, err := cd.Status(g)
			if err != nil {
				fmt.Printf("group %d: unreachable: %v\n", g, err)
				continue
			}
			fmt.Printf("group %d: %s\n", g, st)
		}
		return nil
	case "split":
		if len(args) != 2 {
			return fmt.Errorf("usage: rebalance split <at>")
		}
		nm, err := cd.Split(parsePoint(args[1]))
		if err != nil {
			return err
		}
		fmt.Printf("split committed: map v%d\n", nm.Version)
		return nil
	case "merge":
		if len(args) != 2 {
			return fmt.Errorf("usage: rebalance merge <boundary>")
		}
		nm, err := cd.Merge(parsePoint(args[1]))
		if err != nil {
			return err
		}
		fmt.Printf("merge committed: map v%d\n", nm.Version)
		return nil
	case "move":
		if len(args) != 3 {
			return fmt.Errorf("usage: rebalance move <at> <dest-group>")
		}
		dest, err := strconv.Atoi(args[2])
		if err != nil || dest < 0 {
			return fmt.Errorf("bad destination group %q", args[2])
		}
		nm, err := cd.Move(parsePoint(args[1]), dest)
		if err != nil {
			return err
		}
		fmt.Printf("move committed: map v%d\n", nm.Version)
		return nil
	}
	return fmt.Errorf("unknown rebalance subcommand %q", args[0])
}

// runReconfig parses and submits one membership-change command:
// `add <id> <addr>`, `remove <id>`, or `replace <oldID> <newID> <addr>`.
// addr may be "-" for in-process deployments with no TCP addresses.
func runReconfig(cl *server.Client, args []string) error {
	atoi := func(s string) (int, error) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad replica id %q", s)
		}
		return n, nil
	}
	addrArg := func(s string) string {
		if s == "-" {
			return ""
		}
		return s
	}
	if len(args) == 0 {
		return fmt.Errorf("reconfig needs a subcommand: add|remove|replace")
	}
	switch args[0] {
	case "add":
		if len(args) != 3 {
			return fmt.Errorf("usage: reconfig add <id> <addr>")
		}
		nid, err := atoi(args[1])
		if err != nil {
			return err
		}
		return cl.AddMember(nid, addrArg(args[2]))
	case "remove":
		if len(args) != 2 {
			return fmt.Errorf("usage: reconfig remove <id>")
		}
		nid, err := atoi(args[1])
		if err != nil {
			return err
		}
		return cl.RemoveMember(nid)
	case "replace":
		if len(args) != 4 {
			return fmt.Errorf("usage: reconfig replace <oldID> <newID> <addr>")
		}
		oldID, err := atoi(args[1])
		if err != nil {
			return err
		}
		newID, err := atoi(args[2])
		if err != nil {
			return err
		}
		return cl.ReplaceMember(oldID, newID, addrArg(args[3]))
	}
	return fmt.Errorf("unknown reconfig subcommand %q", args[0])
}

// printStatus dumps each group's per-replica status. For an unsharded
// cluster the map is a single group spanning every server.
func printStatus(id uint64, m *shard.ShardMap, addrs []string) {
	for g := 0; g < m.Groups(); g++ {
		row := m.Placement[g]
		gaddrs := make([]string, len(row))
		for r, n := range row {
			gaddrs[r] = addrs[n]
		}
		cl := server.NewGroupClient(id+uint64(g), g, gaddrs)
		fmt.Printf("group %d:\n", g)
		for r := range row {
			st, err := cl.Status(r)
			if err != nil {
				fmt.Printf("  replica %d (node %d, %s): unreachable: %v\n", r, row[r], gaddrs[r], err)
				continue
			}
			fmt.Printf("  replica %d (node %d, %s): %s leader=%d applied=%d completed=%d outstanding=%d\n",
				r, row[r], gaddrs[r], roleName(st.Role), st.Leader, st.Applied, st.ReqsCompleted, st.Outstanding)
		}
		cl.Close()
	}
}

func main() {
	servers := flag.String("servers", "", "comma-separated client addresses of the nodes")
	appName := flag.String("app", "lsmkv", "application the cluster runs")
	query := flag.Bool("query", false, "run as a read-only query instead of a replicated request")
	replica := flag.Int("replica", 0, "replica to query (with -query; in-group index when sharded)")
	levelName := flag.String("level", "", "consistency level for -query: linearizable|session|eventual (default: raw replica-local query)")
	sharded := flag.Bool("sharded", false, "fetch the shard map and route the command by key")
	live := flag.Bool("live", false, "with -sharded: route through the live-rebalance envelope (rexd -rebalance)")
	key := flag.String("key", "", "routing key with -sharded (default: the command's first argument)")
	clientID := flag.Uint64("client", 0, "client id (default: random)")
	group := flag.Int("group", 0, "shard group for members/reconfig commands")
	flag.Parse()

	if *servers == "" {
		log.Fatal("rexctl: -servers required")
	}
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("rexctl: no command (e.g. `put k v`, `get k`, `shardmap`, `status`)")
	}
	addrs := strings.Split(*servers, ",")
	id := *clientID
	if id == 0 {
		id = rand.Uint64()
	}
	cl := server.NewClient(id, addrs)
	defer cl.Close()

	var level readpath.Level
	if *levelName != "" {
		var err error
		if level, err = readpath.ParseLevel(*levelName); err != nil {
			log.Fatalf("rexctl: %v", err)
		}
		*query = true // -level implies a read
	}

	switch args[0] {
	case "shardmap":
		m, err := fetchMap(cl, len(addrs))
		if err != nil {
			log.Fatalf("rexctl: %v", err)
		}
		fmt.Println(m)
		return
	case "status":
		m, err := fetchMap(cl, len(addrs))
		if err != nil {
			// Unsharded: one group, replica i on "node" i.
			m = &shard.ShardMap{Version: 0, Nodes: len(addrs), Placement: [][]int{make([]int, len(addrs))}}
			for i := range m.Placement[0] {
				m.Placement[0][i] = i
			}
		}
		printStatus(id, m, addrs)
		return
	case "members":
		gcl := server.NewGroupClient(id, *group, addrs)
		defer gcl.Close()
		var lastErr error
		for i := range addrs {
			m, err := gcl.Membership(i)
			if err != nil {
				lastErr = err
				continue
			}
			fmt.Printf("group %d: %s\n", *group, m)
			return
		}
		log.Fatalf("rexctl: no server answered a membership fetch: %v", lastErr)
	case "reconfig":
		gcl := server.NewGroupClient(id, *group, addrs)
		defer gcl.Close()
		if err := runReconfig(gcl, args[1:]); err != nil {
			log.Fatalf("rexctl: %v", err)
		}
		fmt.Println("reconfiguration accepted")
		return
	case "rebalance":
		m, err := fetchMap(cl, len(addrs))
		if err != nil {
			log.Fatalf("rexctl: fetch shard map: %v", err)
		}
		if err := runRebalance(id+1, m, addrs, args[1:]); err != nil {
			log.Fatalf("rexctl: %v", err)
		}
		return
	}

	body, err := apps.Command(*appName, args)
	if err != nil {
		log.Fatalf("rexctl: %v", err)
	}

	var resp []byte
	if *sharded {
		m, err := fetchMap(cl, len(addrs))
		if err != nil {
			log.Fatalf("rexctl: fetch shard map: %v", err)
		}
		var router *shard.Router
		if *live {
			router, err = server.NewLiveShardRouter(id+1, m, addrs)
		} else {
			router, err = server.NewShardRouter(id+1, m, addrs)
		}
		if err != nil {
			log.Fatalf("rexctl: %v", err)
		}
		k := *key
		if k == "" {
			if len(args) < 2 {
				log.Fatal("rexctl: -sharded needs a routing key (-key or a command argument)")
			}
			k = args[1]
		}
		if *query {
			if *levelName != "" {
				resp, err = router.QueryLevel([]byte(k), level, body)
			} else {
				resp, err = router.Query([]byte(k), *replica, body)
			}
		} else {
			resp, err = router.Do([]byte(k), body)
		}
		if err != nil {
			log.Fatalf("rexctl: %v", err)
		}
		fmt.Printf("(group %d) %s\n", router.GroupFor([]byte(k)), apps.FormatResponse(*appName, args[0], resp))
		return
	}

	if *query {
		if *levelName != "" {
			resp, err = cl.QueryLevel(level, body)
		} else {
			resp, err = cl.Query(*replica, body)
		}
	} else {
		resp, err = cl.Do(body)
	}
	if err != nil {
		log.Fatalf("rexctl: %v", err)
	}
	fmt.Println(apps.FormatResponse(*appName, args[0], resp))
}
