// Command rexctl drives a rexd cluster from the command line.
//
//	rexctl -servers 127.0.0.1:8000,127.0.0.1:8001,127.0.0.1:8002 \
//	       -app lsmkv put mykey myvalue
//	rexctl -servers ... -app lsmkv get mykey
//	rexctl -servers ... -app lsmkv -query -replica 1 get mykey
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rex/internal/apps"
	"rex/internal/server"
)

func main() {
	servers := flag.String("servers", "", "comma-separated client addresses of the replicas")
	appName := flag.String("app", "lsmkv", "application the cluster runs")
	query := flag.Bool("query", false, "run as a read-only query instead of a replicated request")
	replica := flag.Int("replica", 0, "replica to query (with -query)")
	clientID := flag.Uint64("client", 0, "client id (default: random)")
	flag.Parse()

	if *servers == "" {
		log.Fatal("rexctl: -servers required")
	}
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("rexctl: no command (e.g. `put k v`, `get k`)")
	}
	body, err := apps.Command(*appName, args)
	if err != nil {
		log.Fatalf("rexctl: %v", err)
	}
	id := *clientID
	if id == 0 {
		id = rand.Uint64()
	}
	cl := server.NewClient(id, strings.Split(*servers, ","))
	defer cl.Close()

	var resp []byte
	if *query {
		resp, err = cl.Query(*replica, body)
	} else {
		resp, err = cl.Do(body)
	}
	if err != nil {
		log.Fatalf("rexctl: %v", err)
	}
	fmt.Println(apps.FormatResponse(*appName, args[0], resp))
}
