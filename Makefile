GO ?= go

.PHONY: all build test race vet bench bench-json chaos check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the transport
# torture tests plus the core replica lifecycle tests.
race:
	$(GO) test -race ./internal/transport ./internal/core

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Commit-path acceptance evidence: WAL group-commit shape, encode
# allocs/op, and a quick Figure 7, as machine-readable JSON.
bench-json:
	$(GO) run ./cmd/rexbench -exp commitpath -json BENCH_commit_path.json

# A short deterministic chaos sweep: every scenario must come back OK.
# Reproduce a failure with `go run ./cmd/rexchaos -seed <seed> -v`.
chaos:
	$(GO) run ./cmd/rexchaos -scenarios 8 -seed 1

check: build vet test race chaos
