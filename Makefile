GO ?= go

.PHONY: all build test race vet bench bench-json chaos check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the transport
# torture tests plus the core replica lifecycle tests.
race:
	$(GO) test -race ./internal/transport ./internal/core

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Acceptance evidence as machine-readable JSON: the commit-path suite
# (WAL group-commit shape, encode allocs/op, quick Figure 7) plus the
# shard-scaling suite (aggregate throughput at 1/2/4/8 groups).
bench-json:
	$(GO) run ./cmd/rexbench -exp commitpath -json BENCH_commit_path.json
	$(GO) run ./cmd/rexbench -exp shards -json BENCH_shard_scaling.json

# A short deterministic chaos sweep: every scenario must come back OK.
# Reproduce a failure with `go run ./cmd/rexchaos -seed <seed> -v`.
chaos:
	$(GO) run ./cmd/rexchaos -scenarios 8 -seed 1
	$(GO) run ./cmd/rexchaos -shards -scenarios 2 -seed 1

check: build vet test race chaos
