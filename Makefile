GO ?= go

.PHONY: all build test race vet bench chaos check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the transport
# torture tests plus the core replica lifecycle tests.
race:
	$(GO) test -race ./internal/transport ./internal/core

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# A short deterministic chaos sweep: every scenario must come back OK.
# Reproduce a failure with `go run ./cmd/rexchaos -seed <seed> -v`.
chaos:
	$(GO) run ./cmd/rexchaos -scenarios 8 -seed 1

check: build vet test race chaos
