GO ?= go

.PHONY: all build test race vet bench check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the transport
# torture tests plus the core replica lifecycle tests.
race:
	$(GO) test -race ./internal/transport ./internal/core

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

check: build vet test race
