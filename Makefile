GO ?= go

.PHONY: all build test race vet staticcheck bench bench-json chaos check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the transport
# torture tests, the core replica lifecycle tests (including the read
# path and the conflict-elision property test), the reconfiguration
# drills (node replacement under load), and the pinned-seed
# consistent-read and conflict-class chaos scenarios.
race:
	$(GO) test -race ./internal/transport ./internal/core
	$(GO) test -race -run 'TestReplacementDrill|TestRemovedIdentityRefused' ./internal/cluster/
	$(GO) test -race -run 'TestReadsScenarioPinnedSeed|TestConflictsScenarioPinnedSeed|TestOverloadScenarioPinnedSeed' ./internal/chaos/
	$(GO) test -race -run 'TestMigrationWindowProperty' ./internal/rebalance/

vet:
	$(GO) vet ./...

# staticcheck is optional locally (skipped when not installed); CI
# installs and runs it unconditionally.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Acceptance evidence as machine-readable JSON: the commit-path suite
# (WAL group-commit shape, encode allocs/op, quick Figure 7, and the
# conflict-class delta-size experiment with its delta_bytes_mean), the
# shard-scaling suite (aggregate throughput at 1/2/4/8 groups, plus the
# live-rebalance migration experiment in its `rebalance` field), and the
# read-scaling suite (linearizable vs session reads on a 90/10 mix),
# and the overload suite (goodput vs offered load past saturation, with
# and without admission control; goodput_2x_vs_peak is the headline).
bench-json:
	$(GO) run ./cmd/rexbench -exp commitpath -json BENCH_commit_path.json
	$(GO) run ./cmd/rexbench -exp shards -json BENCH_shard_scaling.json
	$(GO) run ./cmd/rexbench -exp reads -json BENCH_read_scaling.json
	$(GO) run ./cmd/rexbench -exp overload -json BENCH_overload.json

# A short deterministic chaos sweep: every scenario must come back OK.
# Reproduce a failure with `go run ./cmd/rexchaos -seed <seed> -v`.
chaos:
	$(GO) run ./cmd/rexchaos -scenarios 8 -seed 1
	$(GO) run ./cmd/rexchaos -shards -scenarios 2 -seed 1
	$(GO) run ./cmd/rexchaos -reconfig -scenarios 4 -seed 1 -duration 2s
	$(GO) run ./cmd/rexchaos -recovery -scenarios 4 -seed 1 -duration 4s
	$(GO) run ./cmd/rexchaos -reads -scenarios 4 -seed 1 -duration 4s
	$(GO) run ./cmd/rexchaos -conflicts -scenarios 4 -seed 1 -duration 4s
	$(GO) run ./cmd/rexchaos -overload -scenarios 4 -seed 1
	$(GO) run ./cmd/rexchaos -rebalance -scenarios 2 -seed 1 -groups 3

check: build vet staticcheck test race chaos
