// Benchmarks regenerating the paper's evaluation (§6): one testing.B entry
// per table and figure, running reduced configurations of the same runners
// cmd/rexbench drives in full (figure shape, not absolute numbers — see
// EXPERIMENTS.md), plus real-environment micro-benchmarks measuring the
// genuine per-operation cost of recording, replaying, and encoding traces
// on this machine.
package rex_test

import (
	"io"
	"testing"
	"time"

	"rex/internal/apps"
	"rex/internal/bench"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/trace"
	"rex/internal/wire"
)

// --- Table 1 ---

func BenchmarkTable1Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.PrintTable1(io.Discard)
	}
}

// --- Figure 7: one panel per application ---

func benchFig7(b *testing.B, app apps.App) {
	b.ReportAllocs()
	var last []bench.Fig7Row
	for i := 0; i < b.N; i++ {
		last = bench.Fig7(app, bench.QuickFig7())
	}
	top := last[len(last)-1]
	b.ReportMetric(top.Rex, "rex_req/s")
	b.ReportMetric(top.Native, "native_req/s")
	b.ReportMetric(top.RSM, "rsm_req/s")
	if top.RSM > 0 {
		b.ReportMetric(top.Rex/top.RSM, "rex/rsm")
	}
}

func BenchmarkFig7Thumbnail(b *testing.B)  { benchFig7(b, apps.Thumbnail()) }
func BenchmarkFig7LockServer(b *testing.B) { benchFig7(b, apps.LockServer()) }
func BenchmarkFig7LSMKV(b *testing.B)      { benchFig7(b, apps.LSMKV()) }
func BenchmarkFig7HashDB(b *testing.B)     { benchFig7(b, apps.HashDB()) }
func BenchmarkFig7SimpleFS(b *testing.B)   { benchFig7(b, apps.SimpleFS()) }
func BenchmarkFig7Memcache(b *testing.B)   { benchFig7(b, apps.Memcache()) }

// --- Figure 8 ---

func BenchmarkFig8aGranularity(b *testing.B) {
	cfg := bench.DefaultFig8()
	cfg.Measure = 300 * time.Millisecond
	cfg.Warmup = 100 * time.Millisecond
	var rows []bench.Fig8aRow
	for i := 0; i < b.N; i++ {
		rows = bench.Fig8a(cfg, []int{10, 100}, []float64{0.001, 0.1})
	}
	for _, r := range rows {
		if r.PctInLock == 100 && r.ContentionP == 0.1 {
			b.ReportMetric(r.Rex, "rex_100pct_p0.1_req/s")
		}
	}
}

func BenchmarkFig8bContention(b *testing.B) {
	cfg := bench.DefaultFig8()
	cfg.Measure = 300 * time.Millisecond
	cfg.Warmup = 100 * time.Millisecond
	var rows []bench.Fig8bRow
	for i := 0; i < b.N; i++ {
		rows = bench.Fig8b(cfg, []float64{0.01, 1})
	}
	b.ReportMetric(rows[0].Rex/rows[0].Native, "rex/native_p0.01")
}

// --- Figure 9 ---

func benchFig9(b *testing.B, onPrimary bool) {
	cfg := bench.Fig9Config{
		QueryThreads:  12,
		UpdateThreads: []int{16},
		Cores:         24,
		Warmup:        100 * time.Millisecond,
		Measure:       300 * time.Millisecond,
		Seed:          42,
	}
	var rows []bench.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig9(cfg, onPrimary)
	}
	b.ReportMetric(rows[0].QueryTput, "query_req/s")
	b.ReportMetric(rows[0].UpdateTput, "update_req/s")
}

func BenchmarkFig9QuerySecondary(b *testing.B) { benchFig9(b, false) }
func BenchmarkFig9QueryPrimary(b *testing.B)   { benchFig9(b, true) }

// --- Figure 10 ---

func BenchmarkFig10Failover(b *testing.B) {
	cfg := bench.Fig10Config{
		Threads:         4,
		Cores:           8,
		Clients:         12,
		BucketEvery:     500 * time.Millisecond,
		Checkpoint1:     2 * time.Second,
		Checkpoint2:     5 * time.Second,
		KillAt:          6 * time.Second,
		RestartAt:       9 * time.Second,
		EndAt:           14 * time.Second,
		ElectionTimeout: time.Second,
		Seed:            42,
	}
	var samples []bench.Fig10Sample
	for i := 0; i < b.N; i++ {
		samples = bench.Fig10(cfg)
	}
	var peak float64
	for _, s := range samples {
		if s.Throughput > peak {
			peak = s.Throughput
		}
	}
	b.ReportMetric(peak, "peak_req/s")
}

// --- §6.3 / §4.2 measurements and ablations ---

func BenchmarkTraceSizeProfile(b *testing.B) {
	var s bench.TraceStatsResult
	for i := 0; i < b.N; i++ {
		s = bench.TraceStats(apps.LockServer(), 8)
	}
	b.ReportMetric(s.BytesPerEvent, "bytes/event")
	b.ReportMetric(s.SyncOverhead*100, "sync_pct_of_log")
}

func BenchmarkAblatePruning(b *testing.B) {
	var r bench.EdgeAblationResult
	for i := 0; i < b.N; i++ {
		r = bench.EdgeAblation(apps.LSMKV(), 8)
	}
	b.ReportMetric(r.Reduction*100, "edge_reduction_pct")
}

func BenchmarkAblateTotalOrder(b *testing.B) {
	var r bench.PartialOrderResult
	for i := 0; i < b.N; i++ {
		r = bench.PartialOrderAblation(6)
	}
	b.ReportMetric(r.PartialTime.Seconds()*1000, "partial_replay_ms")
	b.ReportMetric(r.TotalTime.Seconds()*1000, "total_replay_ms")
}

func BenchmarkAblateDeltaProposals(b *testing.B) {
	var r bench.DeltaAblationResult
	for i := 0; i < b.N; i++ {
		r = bench.DeltaAblation(apps.HashDB(), 4)
	}
	if r.DeltaBytes > 0 {
		b.ReportMetric(float64(r.FullBytes)/float64(r.DeltaBytes), "full/delta_bytes")
	}
}

// --- Real-environment micro-benchmarks (genuine ns/op on this machine) ---

// recordDrain keeps the recorder's buffers bounded during long record
// benchmarks.
func recordDrain(rt *sched.Runtime, every int, i int) {
	if i%every == every-1 {
		rt.Recorder().Collect()
	}
}

func BenchmarkRealLockNative(b *testing.B) {
	e := env.NewReal()
	rt := sched.NewRuntime(e, 1, sched.ModeNative)
	l := rexsync.NewLock(rt, "bench")
	w := rt.Worker(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock(w)
		l.Unlock(w)
	}
}

func BenchmarkRealLockRecord(b *testing.B) {
	e := env.NewReal()
	rt := sched.NewRuntime(e, 1, sched.ModeNative)
	rt.StartRecord(nil, 0)
	l := rexsync.NewLock(rt, "bench")
	w := rt.Worker(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock(w)
		l.Unlock(w)
		recordDrain(rt, 1<<14, i)
	}
}

// BenchmarkRecordOverhead measures what the observability layer adds to
// the record hot path. One iteration is a modeled request — a batch of
// recorded lock pairs plus exactly the per-request metric work the
// replica does (admission timestamp, two latency observations, two
// counter increments; see internal/core/primary.go). It times the same
// loop with and without the metric work and reports the overhead as
// overhead_%; the acceptance bar is ≤ 2%.
func BenchmarkRecordOverhead(b *testing.B) {
	e := env.NewReal()
	rt := sched.NewRuntime(e, 1, sched.ModeNative)
	rt.StartRecord(nil, 0)
	l := rexsync.NewLock(rt, "bench")
	w := rt.Worker(0)

	// Sync ops per request, handler-scale (§6.3 traces run tens of sync
	// events per request).
	const opsPerReq = 64
	admitted, completed := obs.NewCounter(), obs.NewCounter()
	execLat, reqLat := obs.NewHistogram(), obs.NewHistogram()
	request := func(i int, instrumented bool) {
		var at time.Duration
		if instrumented {
			admitted.Inc()
			at = e.Now()
		}
		for k := 0; k < opsPerReq; k++ {
			l.Lock(w)
			l.Unlock(w)
		}
		if instrumented {
			d := e.Now() - at
			execLat.Observe(d)
			reqLat.Observe(d)
			completed.Inc()
		}
		recordDrain(rt, 128, i)
	}

	for i := 0; i < 200; i++ { // warm up
		request(i, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		request(i, true)
	}
	b.StopTimer()
	instrNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	// Time the per-request metric work in isolation. Differencing two
	// multi-microsecond loop timings drowns a ~100ns signal in scheduler
	// noise; the two direct measurements are each stable.
	const m = 1 << 20
	t0 := time.Now()
	for i := 0; i < m; i++ {
		admitted.Inc()
		at := e.Now()
		d := e.Now() - at
		execLat.Observe(d)
		reqLat.Observe(d)
		completed.Inc()
	}
	metricNs := float64(time.Since(t0).Nanoseconds()) / float64(m)
	if baseNs := instrNs - metricNs; baseNs > 0 {
		b.ReportMetric(metricNs/baseNs*100, "overhead_%")
		b.ReportMetric(metricNs, "metrics_ns/req")
	}
}

func BenchmarkRealLockReplay(b *testing.B) {
	e := env.NewReal()
	// Record b.N lock pairs...
	rec := sched.NewRuntime(e, 1, sched.ModeNative)
	rec.StartRecord(nil, 0)
	lr := rexsync.NewLock(rec, "bench")
	w := rec.Worker(0)
	for i := 0; i < b.N; i++ {
		lr.Lock(w)
		lr.Unlock(w)
	}
	tr := trace.New(1)
	if err := tr.Apply(rec.Recorder().Collect()); err != nil {
		b.Fatal(err)
	}
	// ...then measure replaying them.
	rep := sched.NewRuntime(e, 1, sched.ModeNative)
	lp := rexsync.NewLock(rep, "bench")
	rep.StartReplay(tr, nil)
	wp := rep.Worker(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.Lock(wp)
		lp.Unlock(wp)
	}
}

func BenchmarkRealLockReplayNoChecks(b *testing.B) {
	e := env.NewReal()
	rec := sched.NewRuntime(e, 1, sched.ModeNative)
	rec.StartRecord(nil, 0)
	lr := rexsync.NewLock(rec, "bench")
	w := rec.Worker(0)
	for i := 0; i < b.N; i++ {
		lr.Lock(w)
		lr.Unlock(w)
	}
	tr := trace.New(1)
	if err := tr.Apply(rec.Recorder().Collect()); err != nil {
		b.Fatal(err)
	}
	rep := sched.NewRuntime(e, 1, sched.ModeNative)
	rep.CheckVersions = false // the §5.1 version-checking ablation
	lp := rexsync.NewLock(rep, "bench")
	rep.StartReplay(tr, nil)
	wp := rep.Worker(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.Lock(wp)
		lp.Unlock(wp)
	}
}

func BenchmarkRealValueRecord(b *testing.B) {
	e := env.NewReal()
	rt := sched.NewRuntime(e, 1, sched.ModeNative)
	rt.StartRecord(nil, 0)
	w := rt.Worker(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rexsync.Value(w, 1, func() uint64 { return uint64(i) })
		recordDrain(rt, 1<<14, i)
	}
}

// buildBenchDelta makes a delta with n two-event, one-edge request traces.
func buildBenchDelta(n int) *trace.Delta {
	d := &trace.Delta{Base: trace.Cut{0, 0}, Threads: make([]trace.ThreadLog, 2)}
	for i := 0; i < n; i++ {
		d.Threads[0].Append(0, trace.Event{Kind: trace.KindLockAcq, Res: 1, Arg: uint64(i)}, nil)
		d.Threads[1].Append(1, trace.Event{Kind: trace.KindLockAcq, Res: 2, Arg: uint64(i)},
			[]trace.EventID{{Thread: 0, Clock: int32(i + 1)}})
	}
	return d
}

func BenchmarkTraceEncode(b *testing.B) {
	d := buildBenchDelta(1000)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int
	for i := 0; i < b.N; i++ {
		bytes = len(d.EncodeBytes())
	}
	b.ReportMetric(float64(bytes)/float64(d.EventCount()), "bytes/event")
}

// BenchmarkTraceEncodeCold is the pre-pooling baseline — a fresh encoder
// per delta pays O(log n) growth reallocations that the pooled path
// (BenchmarkTraceEncodeHint) amortizes away. Compare allocs/op.
func BenchmarkTraceEncodeCold(b *testing.B) {
	d := buildBenchDelta(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := wire.NewEncoder(nil)
		d.Encode(e)
		_ = e.Bytes()
	}
}

// BenchmarkTraceEncodeHint is the primary's hot path: a pooled encoder
// pre-sized from the previous delta's encoded length.
func BenchmarkTraceEncodeHint(b *testing.B) {
	d := buildBenchDelta(1000)
	hint := len(d.EncodeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.EncodeBytesHint(hint)
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	buf := buildBenchDelta(1000).EncodeBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeDeltaBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsistentCut(b *testing.B) {
	tr := trace.New(2)
	if err := tr.Apply(buildBenchDelta(1000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ConsistentCut(nil)
	}
}
